"""Worker-pool abstraction with a deterministic serial fallback.

Design notes
------------

* **Determinism is the caller's contract, enforced by structure.**  A
  task function handed to :meth:`ParallelExecutor.map_tasks` must be a
  pure function of its argument (plus the per-worker context built by
  the initializer from a picklable spec).  Under that contract the
  result list is identical for any worker count -- the executor only
  changes *where* each item is evaluated, never *what* it sees.
* **Serial is a first-class mode, not an emergency.**  ``workers=1``
  (or ``REPRO_WORKERS=0``) runs everything in-process with zero pickling
  and zero pool setup; the parallel path must agree with it bit for bit,
  which is what the determinism regression tests assert.
* **Restricted environments downgrade, once, loudly.**  Sandboxes that
  forbid ``fork``/semaphores raise at pool creation or first dispatch;
  we catch that, emit a single :class:`RuntimeWarning` per process and
  re-run the map serially (task functions are pure, so re-running is
  safe).
"""

from __future__ import annotations

import math
import os
import pickle
import warnings
import weakref
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro.common.errors import ValidationError

__all__ = [
    "ENV_WORKERS",
    "ParallelExecutor",
    "ShardPool",
    "chunk_evenly",
    "host_cpu_count",
    "map_tasks",
    "partition_weighted",
    "resolve_workers",
    "workers_from_env",
]

#: Environment variable controlling the default worker count.
#: ``0`` forces the serial in-process path (useful to pin CI runs).
ENV_WORKERS = "REPRO_WORKERS"

_T = TypeVar("_T")
_R = TypeVar("_R")

# One fallback warning per process: the downgrade is environmental, not
# per-call, and a 100-chunk sweep should not print 100 warnings.
_warned_fallback = False

# Same policy for the oversubscription notice in resolve_workers.
_warned_oversubscription = False


def host_cpu_count() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def workers_from_env(default: int = 1) -> int:
    """Worker count from ``REPRO_WORKERS`` (``0`` means serial).

    Raises :class:`ValidationError` on non-integer or negative values so
    a typo fails fast instead of silently running serial.
    """
    raw = os.environ.get(ENV_WORKERS)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValidationError(
            f"{ENV_WORKERS} must be an integer >= 0, got {raw!r}"
        ) from None
    if value < 0:
        raise ValidationError(f"{ENV_WORKERS} must be an integer >= 0, got {value}")
    return value if value > 0 else 1


def resolve_workers(workers: int | None = None) -> int:
    """Normalize a ``workers`` argument to an effective count (>= 1).

    ``None`` defers to ``REPRO_WORKERS`` (default serial); an explicit
    value must be a positive integer.  A count above the host's usable
    CPUs is allowed -- process pools handle it, and measuring the
    oversubscribed regime is a legitimate benchmark -- but warned about
    once per process, because every "parallel slower than serial" report
    so far traced back to exactly this.
    """
    if workers is None:
        count = workers_from_env()
    else:
        if isinstance(workers, bool) or not isinstance(workers, int):
            raise ValidationError(f"workers must be a positive integer, got {workers!r}")
        if workers < 1:
            raise ValidationError(f"workers must be a positive integer, got {workers}")
        count = workers
    cpus = host_cpu_count()
    global _warned_oversubscription
    if count > cpus and not _warned_oversubscription:
        _warned_oversubscription = True
        warnings.warn(
            f"requested {count} workers but only {cpus} usable CPU(s); "
            "worker processes will time-share cores and parallel speedup "
            "may drop below 1",
            RuntimeWarning,
            stacklevel=3,
        )
    return count


def _warn_serial_fallback(exc: BaseException) -> None:
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    warnings.warn(
        "process pool unavailable in this environment "
        f"({type(exc).__name__}: {exc}); falling back to serial execution",
        RuntimeWarning,
        stacklevel=3,
    )


def _warn_crash_recovery(exc: BaseException, missing: int) -> None:
    # Unlike the environmental downgrade above this is per-incident: a
    # crashed worker mid-map is always worth a line.
    warnings.warn(
        f"a worker process died mid-map ({type(exc).__name__}: {exc}); "
        f"re-running the {missing} unfinished item(s) serially",
        RuntimeWarning,
        stacklevel=3,
    )


class ParallelExecutor:
    """Map pure task functions over items with N worker processes.

    Parameters
    ----------
    workers:
        Worker count; ``None`` defers to ``REPRO_WORKERS``; ``1`` runs
        serially in-process.
    initializer / initargs:
        Per-worker context builder (a module-level function plus
        picklable arguments).  In serial mode it runs once in-process
        before the first task, so both modes execute the same route.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: Sequence[object] = (),
    ):
        self.workers = resolve_workers(workers)
        self._initializer = initializer
        self._initargs = tuple(initargs)

    @property
    def is_serial(self) -> bool:
        return self.workers == 1

    def map_tasks(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        *,
        progress: Callable[[int, int], None] | None = None,
    ) -> list[_R]:
        """``[fn(item) for item in items]``, possibly across processes.

        Results are always returned in input order; ``progress(done,
        total)`` is invoked after each completed item (serial) or each
        completed dispatch (parallel), in completion order.
        """
        items = list(items)
        if self.workers == 1 or len(items) <= 1:
            return self._map_serial(fn, items, progress)
        results: dict[int, _R] = {}
        try:
            self._map_parallel(fn, items, progress, results)
        except (NotImplementedError, OSError) as exc:
            _warn_serial_fallback(exc)
            return self._map_serial(fn, items, progress)
        except BrokenProcessPool as exc:
            if not results:
                # The pool never produced anything -- indistinguishable
                # from an environment that can't run pools at all.
                _warn_serial_fallback(exc)
                return self._map_serial(fn, items, progress)
            # A worker died mid-map: keep every completed result and
            # re-run only the unfinished items serially, once.  Task
            # functions are pure, so the rerun is safe and the combined
            # result list is identical to an undisturbed run.
            missing = [i for i in range(len(items)) if i not in results]
            _warn_crash_recovery(exc, len(missing))
            if self._initializer is not None:
                self._initializer(*self._initargs)
            for i in missing:
                results[i] = fn(items[i])
                if progress is not None:
                    progress(len(results), len(items))
        return [results[i] for i in range(len(items))]

    # ------------------------------------------------------------------

    def _map_serial(
        self,
        fn: Callable[[_T], _R],
        items: list[_T],
        progress: Callable[[int, int], None] | None,
    ) -> list[_R]:
        if self._initializer is not None:
            self._initializer(*self._initargs)
        out: list[_R] = []
        for item in items:
            out.append(fn(item))
            if progress is not None:
                progress(len(out), len(items))
        return out

    def _map_parallel(
        self,
        fn: Callable[[_T], _R],
        items: list[_T],
        progress: Callable[[int, int], None] | None,
        results: dict[int, _R],
    ) -> None:
        """Fill ``results[index]`` as futures complete.

        Completed results are harvested immediately so that a later
        worker crash (:class:`BrokenProcessPool`) loses nothing already
        finished -- ``map_tasks`` re-runs only the missing indices.
        """
        # Imported here so monkeypatching the module attribute in tests
        # (to simulate restricted sandboxes) also affects this path.
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(items)),
            initializer=self._initializer,
            initargs=self._initargs,
        ) as pool:
            index_of = {}
            futures = []
            for i, item in enumerate(items):
                fut = pool.submit(fn, item)
                index_of[fut] = i
                futures.append(fut)
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                broken: BaseException | None = None
                for fut in done:
                    try:
                        # Harvest (and surface task exceptions) eagerly.
                        results[index_of[fut]] = fut.result()
                    except BrokenProcessPool as exc:
                        # Keep draining this batch: siblings that DID
                        # complete still carry results worth keeping.
                        broken = exc
                        continue
                    if progress is not None:
                        progress(len(results), len(items))
                if broken is not None:
                    raise broken


def map_tasks(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int | None = None,
    *,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[object] = (),
    progress: Callable[[int, int], None] | None = None,
) -> list[_R]:
    """One-shot convenience wrapper around :class:`ParallelExecutor`."""
    executor = ParallelExecutor(workers, initializer=initializer, initargs=initargs)
    return executor.map_tasks(fn, items, progress=progress)


def _warn_shard_crash(shard: int, exc: BaseException) -> None:
    # Per-incident, like the mid-map recovery above: a dead beam shard
    # is always worth a line, and the serial rerun covers exactly one
    # shard's chunk -- not the whole iteration.
    warnings.warn(
        f"beam shard {shard} died mid-iteration ({type(exc).__name__}: {exc}); "
        "re-running its chunk serially and respawning the shard",
        RuntimeWarning,
        stacklevel=3,
    )


class _ShardJob:
    """A dispatched (or already-resolved) shard task.

    Carries enough to re-run the task in-process if the shard's worker
    dies before delivering: shard tasks are pure functions of their
    payload plus the replayed per-worker context, so the rerun is safe.
    """

    __slots__ = ("shard", "fn", "payload", "future", "value", "error", "done")

    def __init__(self, shard, fn, payload, future=None, value=None, error=None, done=False):
        self.shard = shard
        self.fn = fn
        self.payload = payload
        self.future = future
        self.value = value
        self.error = error
        self.done = done


class ShardPool:
    """Shard-affine persistent worker pool (the distributed beam solve).

    Unlike :class:`ParallelExecutor` -- which hands items to *whichever*
    worker frees up -- a ShardPool keeps one dedicated single-process
    executor per shard index, so shard ``i``'s jobs always land on the
    same worker process.  That affinity is what keeps worker-resident
    evaluation caches (makespan rows, finish-time frontiers, analytic
    calibrations) warm across beam iterations instead of being rebuilt
    per call.

    Context protocol:

    * ``initializer(*initargs)`` runs once per worker process (and once
      in-process for the serial/fallback path) -- the heavy, solve-
      independent rebuild (e.g. a Deco engine from its spec).
    * :meth:`broadcast` runs a job on **every** shard and records it as
      the *prologue*: any worker process created (or respawned after a
      crash) later replays the current prologue before its first real
      job, so per-solve context (the compiled problem) survives worker
      loss without shipping it on every call.

    Failure policy mirrors :class:`ParallelExecutor`: environments that
    cannot run process pools downgrade to in-process execution with one
    :class:`RuntimeWarning` per process; a worker that dies mid-job gets
    its chunk re-run serially (per-incident warning) and its shard
    respawned lazily -- results are identical either way because shard
    tasks are pure.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: Sequence[object] = (),
    ):
        self.workers = resolve_workers(workers)
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._executors: list[object | None] = [None] * self.workers
        # Replayed on every fresh worker process; version-stamped so the
        # in-process fallback context can tell when it is stale.  Each
        # entry carries its measured pickled payload size so every ship
        # (broadcast or respawn replay) is accounted in ``counters``.
        self._prologue: list[tuple[Callable, object, int]] = []
        self._prologue_stamp: object = None
        #: Broadcast-plane accounting: how many prologues were recorded,
        #: how many were skipped by an unchanged content stamp, how many
        #: times a prologue payload was actually shipped into a worker
        #: process, and the total bytes those ships moved.
        self.counters: dict[str, int] = {
            "broadcasts": 0,
            "broadcast_skipped": 0,
            "broadcast_bytes": 0,
            "prologue_replays": 0,
        }
        self._version = 0
        self._shard_versions = [-1] * self.workers
        self._local_version = -1
        self._local_init = False
        self._serial = self.workers == 1
        self._closed = False
        # Interpreter-exit safety net: an abandoned pool (no close(), no
        # context manager) still shuts its executors down in an orderly
        # way at garbage collection or interpreter exit.  The callback
        # deliberately closes over the executor *list* (stable identity,
        # mutated in place), never over ``self`` -- a self-reference
        # would keep the pool alive forever.  finalize callbacks run
        # before concurrent.futures' own atexit join, so teardown never
        # races the executor management threads.
        self._finalizer = weakref.finalize(
            self, ShardPool._shutdown_abandoned, self._executors
        )

    @staticmethod
    def _shutdown_abandoned(executors: list) -> None:
        """Best-effort executor shutdown for pools never close()d.

        Runs at finalization (gc or interpreter exit), where raising
        would surface as an unraisable-exception warning -- so every
        failure mode is swallowed: the processes die with the
        interpreter anyway, this just makes the common path quiet.
        """
        for i, executor in enumerate(executors):
            executors[i] = None
            if executor is not None:
                try:
                    executor.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass

    @property
    def is_serial(self) -> bool:
        """Whether jobs currently run in-process (1 worker or fallback)."""
        return self._serial

    # In-process execution --------------------------------------------

    def _ensure_local(self) -> None:
        """Bring the in-process context up to date (init + prologue)."""
        if not self._local_init:
            if self._initializer is not None:
                self._initializer(*self._initargs)
            self._local_init = True
        if self._local_version != self._version:
            for fn, payload, _nbytes in self._prologue:
                fn(payload)
            self._local_version = self._version

    def _run_local(self, fn: Callable, payload) -> object:
        self._ensure_local()
        return fn(payload)

    def _downgrade(self, exc: BaseException) -> None:
        _warn_serial_fallback(exc)
        self._serial = True
        self.close_executors()

    # Worker-process execution ----------------------------------------

    def _spawn(self, shard: int):
        """The shard's executor, created (with prologue replay) on demand."""
        if self._closed:
            raise RuntimeError("ShardPool is closed")
        executor = self._executors[shard]
        if executor is not None and self._shard_versions[shard] == self._version:
            return executor
        from concurrent.futures import ProcessPoolExecutor

        if executor is None:
            executor = ProcessPoolExecutor(
                max_workers=1,
                initializer=self._initializer,
                initargs=self._initargs,
            )
            self._executors[shard] = executor
        # Replay the current prologue synchronously: a begin-solve that
        # fails must surface here, not as a confusing "unknown solve"
        # from the first real job.
        for fn, payload, nbytes in self._prologue:
            executor.submit(fn, payload).result()
            self.counters["prologue_replays"] += 1
            self.counters["broadcast_bytes"] += nbytes
        self._shard_versions[shard] = self._version
        return executor

    def _discard(self, shard: int) -> None:
        executor = self._executors[shard]
        self._executors[shard] = None
        self._shard_versions[shard] = -1
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                # Shutting down an already-broken executor (dead worker,
                # interpreter teardown) must never mask the incident
                # being handled -- the processes are reaped regardless.
                pass

    # Public API -------------------------------------------------------

    def broadcast(
        self, fn: Callable[[_T], _R], payload: _T, stamp: object = None
    ) -> list[_R]:
        """Run ``(fn, payload)`` on every shard; record it as the prologue.

        The recorded prologue replaces any previous one (solves are
        sequential: only the current solve's context needs replaying on
        a respawned worker).

        ``stamp`` is the caller's content identity for the payload (a
        hash, not the payload itself).  When it matches the recorded
        prologue's stamp the broadcast is skipped *before any
        serialization happens*: live shards already hold this exact
        context, crashed shards will replay the recorded prologue on
        their next spawn, and the only cost is a counter bump.
        """
        if stamp is not None and self._prologue and stamp == self._prologue_stamp:
            self.counters["broadcast_skipped"] += 1
            if self._serial:
                self._ensure_local()
            return [True] * (1 if self._serial else self.workers)  # type: ignore[list-item]
        nbytes = 0
        if not self._serial:
            try:
                nbytes = len(pickle.dumps(payload, protocol=4))
            except Exception:
                nbytes = 0  # unpicklable payloads fail loudly in _spawn
        self._prologue = [(fn, payload, nbytes)]
        self._prologue_stamp = stamp
        self.counters["broadcasts"] += 1
        self._version += 1
        self._local_version = -1  # the in-process context is now stale
        if self._serial:
            return [self._run_local(fn, payload)]
        results: list[_R] = []
        for shard in range(self.workers):
            try:
                self._spawn(shard)  # prologue replay IS the broadcast
            except (NotImplementedError, OSError) as exc:
                self._downgrade(exc)
                return [self._run_local(fn, payload)]
            except BrokenProcessPool as exc:
                _warn_shard_crash(shard, exc)
                self._discard(shard)
                results.append(self._run_local(fn, payload))  # type: ignore[arg-type]
                continue
            results.append(True)  # type: ignore[arg-type]
        return results

    def submit(self, shard: int, fn: Callable[[_T], _R], payload: _T) -> _ShardJob:
        """Dispatch a job to ``shard % workers``; never blocks on results.

        Pair with :meth:`gather`.  In serial/fallback mode the job runs
        inline here and :meth:`gather` just unwraps it.
        """
        shard = shard % self.workers
        if not self._serial:
            try:
                executor = self._spawn(shard)
                return _ShardJob(shard, fn, payload, future=executor.submit(fn, payload))
            except (NotImplementedError, OSError) as exc:
                self._downgrade(exc)
            except BrokenProcessPool as exc:
                _warn_shard_crash(shard, exc)
                self._discard(shard)
                return _ShardJob(shard, fn, payload)  # resolved at gather, locally
        try:
            return _ShardJob(shard, fn, payload, value=self._run_local(fn, payload), done=True)
        except Exception as exc:  # surfaced at gather, like a future's
            return _ShardJob(shard, fn, payload, error=exc, done=True)

    def gather(self, jobs: Sequence[_ShardJob]) -> list:
        """Results of :meth:`submit` jobs, in submission-list order.

        A shard whose worker died mid-job is warned about (per
        incident), its chunk re-run in-process against the replayed
        prologue context, and its executor respawned on next use -- the
        result list is identical to an undisturbed run.
        """
        results = []
        for job in jobs:
            if job.future is None:
                if job.error is not None:
                    raise job.error
                if not job.done:
                    # Dispatch-time crash: resolve locally now.
                    job.value = self._run_local(job.fn, job.payload)
                    job.done = True
                results.append(job.value)
                continue
            try:
                results.append(job.future.result())
            except BrokenProcessPool as exc:
                _warn_shard_crash(job.shard, exc)
                self._discard(job.shard)
                results.append(self._run_local(job.fn, job.payload))
            except (NotImplementedError, OSError) as exc:
                self._downgrade(exc)
                results.append(self._run_local(job.fn, job.payload))
        return results

    def run(self, fn: Callable[[_T], _R], payloads: Sequence[_T]) -> list[_R]:
        """Barrier convenience: ``payloads[i]`` on shard ``i``, gathered."""
        return self.gather([self.submit(i, fn, p) for i, p in enumerate(payloads)])

    def respawn(self, shard: int) -> None:
        """Discard ``shard``'s worker process; the next job respawns it.

        The public face of crash handling for layers above the beam
        solve (the service worker pool): after killing or losing a
        worker, call this and the next :meth:`submit` to the shard
        creates a fresh process and replays the current prologue.
        """
        self._discard(shard % self.workers)

    def worker_pids(self) -> list[int | None]:
        """OS pid of each shard's live worker process (``None`` if down).

        Liveness probes and chaos tooling (kill a worker mid-solve by
        pid) need the real process identity; a shard whose executor is
        not spawned yet, was discarded, or runs in the serial fallback
        reports ``None``.
        """
        pids: list[int | None] = []
        for executor in self._executors:
            procs = getattr(executor, "_processes", None) or {}
            alive = [p.pid for p in procs.values() if p.is_alive()]
            pids.append(alive[0] if alive else None)
        return pids

    def close_executors(self) -> None:
        """Shut down every worker process (the pool stays usable serially)."""
        for shard in range(self.workers):
            self._discard(shard)

    def close(self) -> None:
        """Shut down the pool for good (idempotent and re-entrant)."""
        self.close_executors()
        self._closed = True


def chunk_evenly(items: Sequence[_T], chunks: int) -> list[list[_T]]:
    """Split ``items`` into at most ``chunks`` contiguous, balanced runs.

    Contiguity keeps flattened results in input order; balance keeps the
    pool busy (sizes differ by at most one).  Empty chunks are dropped.
    """
    if chunks < 1:
        raise ValidationError(f"chunks must be >= 1, got {chunks}")
    n = len(items)
    chunks = min(chunks, n) if n else 0
    out: list[list[_T]] = []
    start = 0
    for i in range(chunks):
        size = n // chunks + (1 if i < n % chunks else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out


def partition_weighted(items: Sequence[_T], weights: Sequence[float]) -> list[list[_T]]:
    """Split ``items`` into ``len(weights)`` contiguous runs sized by weight.

    The cost-model partitioner behind adaptive sharding: chunk ``j``
    targets the exact quota ``n * w_j / sum(w)`` and receives its floor
    plus at most one largest-remainder item, so every chunk size is
    within one item of its quota.  The partition is total and
    order-preserving (concatenating the chunks reproduces ``items``),
    may contain empty chunks (slot alignment matters to shard-affine
    pools), and is deterministic given ``(items, weights)`` --
    remainder ties break toward the lower index.  Non-finite or
    non-positive weights are replaced by the mean of the valid ones
    (even split when none are valid).
    """
    if not len(weights):
        raise ValidationError("weights must be non-empty")
    ws = [float(w) for w in weights]
    valid = [w for w in ws if math.isfinite(w) and w > 0.0]
    fallback = (sum(valid) / len(valid)) if valid else 1.0
    ws = [w if (math.isfinite(w) and w > 0.0) else fallback for w in ws]
    n = len(items)
    total = sum(ws)
    quotas = [n * w / total for w in ws]
    sizes = [int(q) for q in quotas]
    leftover = n - sum(sizes)
    by_remainder = sorted(
        range(len(ws)), key=lambda j: (sizes[j] - quotas[j], j)
    )
    for j in by_remainder[:leftover]:
        sizes[j] += 1
    out: list[list[_T]] = []
    start = 0
    for size in sizes:
        out.append(list(items[start : start + size]))
        start += size
    return out
