"""Per-worker context: rebuild simulator/Deco state inside each process.

Task functions dispatched through :class:`~repro.parallel.ParallelExecutor`
must be module-level (picklable by reference) and pure.  The stateful
parts -- a :class:`~repro.cloud.simulator.CloudSimulator` or a
:class:`~repro.engine.deco.Deco` engine -- are rebuilt once per worker
process by the initializers below from small picklable specs, never
shipped per task.  Rebuilding (rather than forking the parent's live
objects) is what makes the determinism contract auditable:

* the simulator's per-run streams derive statelessly from
  ``spawn_rng(seed, "sim/<workflow>/<region>/<run_id>")``, so a worker
  holding a pristine :class:`~repro.common.rng.RngService` replays run
  ``r`` identically to the serial loop, whatever other runs it was
  handed;
* a Deco solve is cache-transparent (memoized makespans and compiled
  problems return exactly what recomputation would), so a cold
  per-worker engine produces the same plan as the caller's warm one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.cloud.simulator import CloudSimulator, ExecutionResult
from repro.common.errors import DecoError, ExecutionAborted, ValidationError
from repro.common.rng import RngService
from repro.parallel.executor import ParallelExecutor, resolve_workers
from repro.workflow.dag import Workflow
from repro.workflow.runtime_model import RuntimeModel

if TYPE_CHECKING:  # import cycle guard (parallel <-> engine), typing only
    from repro.engine.deco import Deco
    from repro.engine.plan import ProvisioningPlan
    from repro.faults.model import FaultModel
    from repro.faults.recovery import RecoveryPolicy

__all__ = [
    "init_simulator_worker",
    "run_replication_chunk",
    "init_deco_worker",
    "solve_plan_job",
    "solve_plans",
]

# Worker-process singletons, populated by the initializers.  In serial
# mode the initializer runs in-process, so the same task functions work
# unchanged -- one code route for both modes.
_SIMULATOR: CloudSimulator | None = None
_DECO: "Deco | None" = None


# Simulation replications ----------------------------------------------------


def init_simulator_worker(catalog, rngs: RngService, runtime_model: RuntimeModel) -> None:
    """Build this worker's simulator from the parent's (picklable) parts.

    The RNG service is re-derived pristine from its seed: workers never
    inherit consumed generator state, so replication ``r`` sees exactly
    the stream ``spawn_rng(seed, ".../r")`` regardless of which worker
    (or the serial loop) executes it.
    """
    global _SIMULATOR
    _SIMULATOR = CloudSimulator(catalog, rngs.pristine(), runtime_model)


def run_replication_chunk(
    payload: tuple[
        Workflow, Mapping[str, str], str | None, Sequence[int], float, int,
        "FaultModel | None", "RecoveryPolicy | None", str,
    ],
) -> list[ExecutionResult]:
    """Execute a contiguous chunk of run ids on this worker's simulator.

    ``on_abort`` mirrors :meth:`CloudSimulator.run_many`: ``"raise"``
    propagates an :class:`~repro.common.errors.ExecutionAborted` to the
    parent, ``"skip"`` drops the aborted run from the chunk, and
    ``"record"`` keeps its censored partial result.  Handling it here
    (not in the parent) keeps skip/record batches alive without
    shipping exceptions across the pool.
    """
    (
        workflow, assignment, region, run_ids,
        failure_rate, max_retries, faults, recovery, on_abort,
    ) = payload
    if _SIMULATOR is None:
        raise RuntimeError("simulator worker used before init_simulator_worker")
    results: list[ExecutionResult] = []
    for run_id in run_ids:
        try:
            results.append(
                _SIMULATOR.execute(
                    workflow,
                    assignment,
                    region=region,
                    run_id=run_id,
                    failure_rate=failure_rate,
                    max_retries=max_retries,
                    faults=faults,
                    recovery=recovery,
                )
            )
        except ExecutionAborted as exc:
            if on_abort == "raise":
                raise
            if on_abort == "record" and exc.partial_result is not None:
                results.append(exc.partial_result)
    return results


# Deco solves ----------------------------------------------------------------


def init_deco_worker(spec: Mapping[str, object]) -> None:
    """Rebuild a pristine Deco engine from :meth:`Deco.spec`."""
    from repro.engine.deco import Deco

    global _DECO
    _DECO = Deco.from_spec(dict(spec))


def solve_plan_job(
    payload: tuple[object, Workflow, float | str, float, str],
) -> "tuple[object, ProvisioningPlan | None]":
    """Solve one (key, workflow, deadline, percentile, on_error) job.

    With ``on_error="record"`` a failed solve returns ``(key, None)``
    instead of raising -- failures stay data, never exceptions shipped
    across the pool.
    """
    key, workflow, deadline, percentile, on_error = payload
    if _DECO is None:
        raise RuntimeError("deco worker used before init_deco_worker")
    try:
        return key, _DECO.schedule(workflow, deadline, deadline_percentile=percentile)
    except DecoError:
        if on_error == "raise":
            raise
        return key, None


def solve_plans(
    deco: "Deco",
    jobs: Iterable[tuple[object, Workflow, float | str, float]],
    workers: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    on_error: str = "raise",
) -> "dict[object, ProvisioningPlan | None]":
    """Solve independent scheduling jobs, keyed by each job's key.

    The serial path reuses the caller's engine (keeping its compiled
    problem and makespan caches warm across calls); parallel workers
    rebuild cold engines from ``deco.spec()``.  Both yield identical
    plans because solves are cache-transparent.

    ``on_error="record"`` maps a member whose solve raises a
    :class:`~repro.common.errors.DecoError` (infeasible deadline, bad
    workflow) to ``None`` instead of killing the whole batch --
    :meth:`EnsembleDriver.member_plans` uses this to record-and-skip.
    """
    jobs = list(jobs)
    if on_error not in ("raise", "record"):
        raise ValidationError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    nworkers = resolve_workers(workers)
    if nworkers == 1 or len(jobs) <= 1:
        plans: "dict[object, ProvisioningPlan | None]" = {}
        for key, workflow, deadline, percentile in jobs:
            try:
                plans[key] = deco.schedule(
                    workflow, deadline, deadline_percentile=percentile
                )
            except DecoError:
                if on_error == "raise":
                    raise
                plans[key] = None
            if progress is not None:
                progress(len(plans), len(jobs))
        return plans
    executor = ParallelExecutor(
        nworkers, initializer=init_deco_worker, initargs=(deco.spec(),)
    )
    payloads = [(*job, on_error) for job in jobs]
    return dict(executor.map_tasks(solve_plan_job, payloads, progress=progress))
