"""Per-worker context: rebuild simulator/Deco state inside each process.

Task functions dispatched through :class:`~repro.parallel.ParallelExecutor`
must be module-level (picklable by reference) and pure.  The stateful
parts -- a :class:`~repro.cloud.simulator.CloudSimulator` or a
:class:`~repro.engine.deco.Deco` engine -- are rebuilt once per worker
process by the initializers below from small picklable specs, never
shipped per task.  Rebuilding (rather than forking the parent's live
objects) is what makes the determinism contract auditable:

* the simulator's per-run streams derive statelessly from
  ``spawn_rng(seed, "sim/<workflow>/<region>/<run_id>")``, so a worker
  holding a pristine :class:`~repro.common.rng.RngService` replays run
  ``r`` identically to the serial loop, whatever other runs it was
  handed;
* a Deco solve is cache-transparent (memoized makespans and compiled
  problems return exactly what recomputation would), so a cold
  per-worker engine produces the same plan as the caller's warm one.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.cloud.simulator import CloudSimulator, ExecutionResult
from repro.common.errors import DecoError, ExecutionAborted, ValidationError
from repro.common.rng import RngService
from repro.parallel.executor import ParallelExecutor, resolve_workers
from repro.workflow.dag import Workflow
from repro.workflow.runtime_model import RuntimeModel

if TYPE_CHECKING:  # import cycle guard (parallel <-> engine), typing only
    import numpy as np

    from repro.engine.deco import Deco
    from repro.engine.plan import ProvisioningPlan
    from repro.faults.model import FaultModel
    from repro.faults.recovery import RecoveryPolicy
    from repro.solver.backends import CompiledProblem
    from repro.solver.state import PlanState, StateEval

__all__ = [
    "init_simulator_worker",
    "run_replication_chunk",
    "init_deco_worker",
    "solve_plan_job",
    "solve_plans",
    "init_beam_worker",
    "beam_begin_solve",
    "beam_begin_solve_arena",
    "beam_screen_job",
    "beam_eval_job",
]

# Worker-process singletons, populated by the initializers.  In serial
# mode the initializer runs in-process, so the same task functions work
# unchanged -- one code route for both modes.
_SIMULATOR: CloudSimulator | None = None
_DECO: "Deco | None" = None


# Simulation replications ----------------------------------------------------


def init_simulator_worker(catalog, rngs: RngService, runtime_model: RuntimeModel) -> None:
    """Build this worker's simulator from the parent's (picklable) parts.

    The RNG service is re-derived pristine from its seed: workers never
    inherit consumed generator state, so replication ``r`` sees exactly
    the stream ``spawn_rng(seed, ".../r")`` regardless of which worker
    (or the serial loop) executes it.
    """
    global _SIMULATOR
    _SIMULATOR = CloudSimulator(catalog, rngs.pristine(), runtime_model)


def run_replication_chunk(
    payload: tuple[
        Workflow, Mapping[str, str], str | None, Sequence[int], float, int,
        "FaultModel | None", "RecoveryPolicy | None", str,
    ],
) -> list[ExecutionResult]:
    """Execute a contiguous chunk of run ids on this worker's simulator.

    ``on_abort`` mirrors :meth:`CloudSimulator.run_many`: ``"raise"``
    propagates an :class:`~repro.common.errors.ExecutionAborted` to the
    parent, ``"skip"`` drops the aborted run from the chunk, and
    ``"record"`` keeps its censored partial result.  Handling it here
    (not in the parent) keeps skip/record batches alive without
    shipping exceptions across the pool.
    """
    (
        workflow, assignment, region, run_ids,
        failure_rate, max_retries, faults, recovery, on_abort,
    ) = payload
    if _SIMULATOR is None:
        raise RuntimeError("simulator worker used before init_simulator_worker")
    results: list[ExecutionResult] = []
    for run_id in run_ids:
        try:
            results.append(
                _SIMULATOR.execute(
                    workflow,
                    assignment,
                    region=region,
                    run_id=run_id,
                    failure_rate=failure_rate,
                    max_retries=max_retries,
                    faults=faults,
                    recovery=recovery,
                )
            )
        except ExecutionAborted as exc:
            if on_abort == "raise":
                raise
            if on_abort == "record" and exc.partial_result is not None:
                results.append(exc.partial_result)
    return results


# Deco solves ----------------------------------------------------------------


def init_deco_worker(spec: Mapping[str, object]) -> None:
    """Rebuild a pristine Deco engine from :meth:`Deco.spec`."""
    from repro.engine.deco import Deco

    global _DECO
    _DECO = Deco.from_spec(dict(spec))


def solve_plan_job(
    payload: tuple[object, Workflow, float | str, float, str],
) -> "tuple[object, ProvisioningPlan | None]":
    """Solve one (key, workflow, deadline, percentile, on_error) job.

    With ``on_error="record"`` a failed solve returns ``(key, None)``
    instead of raising -- failures stay data, never exceptions shipped
    across the pool.
    """
    key, workflow, deadline, percentile, on_error = payload
    if _DECO is None:
        raise RuntimeError("deco worker used before init_deco_worker")
    try:
        return key, _DECO.schedule(workflow, deadline, deadline_percentile=percentile)
    except DecoError:
        if on_error == "raise":
            raise
        return key, None


def solve_plans(
    deco: "Deco",
    jobs: Iterable[tuple[object, Workflow, float | str, float]],
    workers: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    on_error: str = "raise",
) -> "dict[object, ProvisioningPlan | None]":
    """Solve independent scheduling jobs, keyed by each job's key.

    The serial path reuses the caller's engine (keeping its compiled
    problem and makespan caches warm across calls); parallel workers
    rebuild cold engines from ``deco.spec()``.  Both yield identical
    plans because solves are cache-transparent.

    ``on_error="record"`` maps a member whose solve raises a
    :class:`~repro.common.errors.DecoError` (infeasible deadline, bad
    workflow) to ``None`` instead of killing the whole batch --
    :meth:`EnsembleDriver.member_plans` uses this to record-and-skip.
    """
    jobs = list(jobs)
    if on_error not in ("raise", "record"):
        raise ValidationError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    nworkers = resolve_workers(workers)
    if nworkers == 1 or len(jobs) <= 1:
        plans: "dict[object, ProvisioningPlan | None]" = {}
        for key, workflow, deadline, percentile in jobs:
            try:
                plans[key] = deco.schedule(
                    workflow, deadline, deadline_percentile=percentile
                )
            except DecoError:
                if on_error == "raise":
                    raise
                plans[key] = None
            if progress is not None:
                progress(len(plans), len(jobs))
        return plans
    executor = ParallelExecutor(
        nworkers, initializer=init_deco_worker, initargs=(deco.spec(),)
    )
    payloads = [(*job, on_error) for job in jobs]
    return dict(executor.map_tasks(solve_plan_job, payloads, progress=progress))

# Beam shards ----------------------------------------------------------------
#
# The distributed beam solve (see DESIGN.md §13) keeps one Deco engine
# resident per shard process and, per solve, one compiled problem derived
# from the engine's base compilation -- exactly mirroring
# ``Deco.schedule``'s compile/with_deadline/with_faults pipeline so every
# per-state number a shard returns is bitwise what the serial loop would
# compute.  Shards return raw per-candidate values only (moments, prefix
# probabilities, StateEvals, monotone counter deltas); every *decision*
# -- tier classification, keep masks, incumbent updates, frontier merge
# -- happens in the parent, which is what makes plans bit-identical at
# any worker count.

_BEAM_DECO: "Deco | None" = None
#: wf_key (content hash of the pickled workflow/region) -> base problem.
_BEAM_BASES: "dict[str, CompiledProblem]" = {}
_BEAM_BASE_ORDER: list[str] = []
_BEAM_BASE_LIMIT = 4
#: The current solve's (context token, derived problem); solves are
#: sequential, so one slot suffices.  The token is an int solve id on
#: the legacy pickled-prologue path and the arena context key (string)
#: on the shared-memory path.
_BEAM_PROBLEM: "tuple[object, CompiledProblem] | None" = None
#: arena content key -> (attached segment, base problem over its arrays).
#: Keeps the shared mapping (and the derived problem reusing it) alive
#: across solves; LRU-bounded so a long-lived shard cannot accumulate
#: mappings for every workflow it ever saw.
_BEAM_SEGMENTS: "OrderedDict[str, tuple[object, CompiledProblem]]" = OrderedDict()
_BEAM_SEGMENT_LIMIT = 4


def init_beam_worker(spec: Mapping[str, object]) -> None:
    """Rebuild this shard's resident Deco engine from :meth:`Deco.spec`.

    Runs once per worker process (and once in-process for the serial
    fallback path).  The engine's caches start cold and stay warm across
    beam iterations thanks to the :class:`ShardPool`'s shard affinity.
    """
    from repro.engine.deco import Deco

    global _BEAM_DECO, _BEAM_PROBLEM
    _BEAM_DECO = Deco.from_spec(dict(spec))
    _BEAM_PROBLEM = None
    _BEAM_BASES.clear()
    _BEAM_BASE_ORDER.clear()
    _BEAM_SEGMENTS.clear()


def beam_begin_solve(
    payload: tuple[
        int, str, Workflow, str | None, float, float,
        "FaultModel | None", "RecoveryPolicy | None", float | None,
    ],
) -> bool:
    """Install one solve's compiled problem in this shard (the prologue).

    Mirrors ``Deco.schedule`` exactly: compile the workflow once per
    content hash (``wf_key``), derive the deadline via ``with_deadline``
    (sharing the sample tensor, so the shard's makespan cache keeps
    hitting across deadline sweeps), then apply the fault model.  The
    sample tensor is a pure function of (workflow, catalog, num_samples,
    seed), so a respawned worker replaying this prologue reproduces the
    parent's evaluation numbers bit for bit.
    """
    (
        solve_key, wf_key, workflow, region,
        deadline, percentile, faults, recovery, reliability_percentile,
    ) = payload
    deco = _BEAM_DECO
    if deco is None:
        raise RuntimeError("beam worker used before init_beam_worker")
    from repro.solver.backends import CompiledProblem

    base = _BEAM_BASES.get(wf_key)
    if base is None:
        base = CompiledProblem.compile(
            workflow=workflow,
            catalog=deco.catalog,
            deadline=1.0,
            percentile=96.0,
            num_samples=deco.num_samples,
            seed=deco.seed,
            runtime_model=deco.runtime_model,
            region=region,
        )
        _BEAM_BASES[wf_key] = base
        _BEAM_BASE_ORDER.append(wf_key)
        while len(_BEAM_BASE_ORDER) > _BEAM_BASE_LIMIT:
            _BEAM_BASES.pop(_BEAM_BASE_ORDER.pop(0), None)
    problem = base.with_deadline(deadline, percentile=percentile)
    if faults is not None:
        problem = problem.with_faults(
            faults, recovery, reliability_percentile=reliability_percentile
        )
    global _BEAM_PROBLEM
    _BEAM_PROBLEM = (solve_key, problem)
    return True


def beam_begin_solve_arena(
    payload: tuple[
        str, str, float, float,
        "FaultModel | None", "RecoveryPolicy | None", float,
    ],
) -> bool:
    """Install one solve's problem by attaching its shared-memory segment.

    The zero-copy counterpart of :func:`beam_begin_solve`: instead of a
    pickled workflow, the payload carries the problem's arena content
    key plus the per-solve scalars (deadline, fault metadata).  The
    shard maps the parent's published tensors read-only, rebuilds a
    :class:`CompiledProblem` over them (and adopts the published
    analytic calibration, when present), and caches the attachment per
    content key so deadline sweeps re-derive via ``with_deadline`` --
    worker evaluation caches keep hitting exactly as on the legacy
    path.  Raises :class:`~repro.parallel.arena.ArenaError` when the
    segment cannot be attached; the parent falls back to the pickled
    prologue.
    """
    (
        ctx_key, arena_key, deadline, required_probability,
        faults, recovery, reliability_required,
    ) = payload
    deco = _BEAM_DECO
    if deco is None:
        raise RuntimeError("beam worker used before init_beam_worker")
    entry = _BEAM_SEGMENTS.get(arena_key)
    if entry is None:
        from repro.engine.compiler import calibration_from_segment, problem_from_segment
        from repro.parallel.arena import attach_segment

        segment = attach_segment(arena_key)
        base = problem_from_segment(
            segment,
            deco.catalog,
            deadline=1.0,
            required_probability=0.96,
            faults=faults,
            recovery=recovery,
            reliability_required=reliability_required,
        )
        calibration = calibration_from_segment(segment)
        if calibration is not None:
            deco._search._analytic_evaluator().adopt_calibration(
                base.sample_token, *calibration
            )
        _BEAM_SEGMENTS[arena_key] = (segment, base)
        while len(_BEAM_SEGMENTS) > _BEAM_SEGMENT_LIMIT:
            # Dropping the reference detaches lazily: the finalizer
            # closes the mapping once no derived problem aliases it.
            _BEAM_SEGMENTS.popitem(last=False)
    else:
        _BEAM_SEGMENTS.move_to_end(arena_key)
        _segment, base = entry
    problem = base.with_deadline(
        float(deadline), percentile=float(required_probability) * 100.0
    )
    global _BEAM_PROBLEM
    _BEAM_PROBLEM = (ctx_key, problem)
    return True


def _beam_context(token: object) -> "tuple[Deco, CompiledProblem]":
    if _BEAM_DECO is None:
        raise RuntimeError("beam worker used before init_beam_worker")
    if _BEAM_PROBLEM is None or _BEAM_PROBLEM[0] != token:
        raise RuntimeError(
            f"beam worker has no problem for solve {token} "
            "(begin-solve prologue missing or stale)"
        )
    return _BEAM_DECO, _BEAM_PROBLEM[1]


def _beam_counters(deco: "Deco") -> dict[str, int]:
    """This shard's flat monotone work counters (caches + delta + tier 0)."""
    snap = deco.backend.counters_snapshot()
    tier0 = deco._search.analytic_stats()
    if tier0:
        for key, value in tier0.items():
            snap[key] = int(value)
    return snap


def _beam_delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
    return {key: value - before.get(key, 0) for key, value in after.items()}


def beam_screen_job(
    payload: "tuple[int, list[PlanState], bool, bool, int]",
) -> "tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None, dict[str, int]]":
    """Tier-0 moments and/or tier-1 prefix probabilities for one chunk.

    Pure per-candidate numbers: analytic makespan moments and prefix-MC
    deadline probabilities are per-state values independent of batch
    composition, so the parent can classify/keep against the *global*
    batch (median standdown, survivor gates) after concatenating chunk
    results in order.
    """
    solve_key, states, want_moments, want_screen, screen_samples = payload
    deco, problem = _beam_context(solve_key)
    before = _beam_counters(deco)
    t0 = time.perf_counter()
    a_mean = a_var = probs = None
    if want_moments and states:
        a_mean, a_var = deco._search._analytic_evaluator().makespan_moments(
            problem, list(states)
        )
    if want_screen and states:
        probs = deco.backend.screen_probabilities(
            problem, list(states), screen_samples
        )
    delta = _beam_delta(before, _beam_counters(deco))
    # Fuel for the parent's shard cost model (per-candidate EWMA): how
    # long this chunk took and how many candidates it covered.  Monotone
    # like every other counter, so absorbing sums them into totals.
    delta["screen_elapsed_us"] = int((time.perf_counter() - t0) * 1e6)
    delta["screen_candidates"] = len(states)
    return a_mean, a_var, probs, delta


def beam_eval_job(
    payload: "tuple[int, list[PlanState], list[PlanState], bool]",
) -> "tuple[list[StateEval], dict[str, int]]":
    """Tier-2 full-fidelity evaluation of one chunk.

    Pins the chunk's expanded parents first (when incremental), so the
    shard-resident EvalContext serves the delta-propagation path; a
    parent first seen by this shard is propagated in full -- slower,
    never different, because the delta path is bit-identical to the full
    kernel by construction.
    """
    solve_key, states, parents, incremental = payload
    deco, problem = _beam_context(solve_key)
    before = _beam_counters(deco)
    t0 = time.perf_counter()
    if incremental and parents and hasattr(deco.backend, "ensure_frontier"):
        for parent in parents:
            deco.backend.ensure_frontier(problem, parent)
    evals = list(deco.backend.evaluate_batch(problem, list(states))) if states else []
    delta = _beam_delta(before, _beam_counters(deco))
    delta["eval_elapsed_us"] = int((time.perf_counter() - t0) * 1e6)
    delta["eval_candidates"] = len(states)
    return evals, delta
