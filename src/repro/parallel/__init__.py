"""Deterministic multi-core fan-out for the embarrassingly parallel layers.

The solver kernel is already vectorized (PR 1); what remained serial was
everything *around* it: simulation replications (``run_many``), ensemble
member solves (``member_plans``) and the bench drivers' configuration
sweeps.  This package provides the one worker-pool abstraction they all
share:

* :class:`ParallelExecutor` / :func:`map_tasks` -- a thin, failure-aware
  wrapper over :class:`concurrent.futures.ProcessPoolExecutor` with a
  serial in-process fallback (``workers=1`` or ``REPRO_WORKERS=0``), and
  a clean single-warning downgrade when process pools are unavailable
  (restricted sandboxes, missing ``/dev/shm`` ...);
* :class:`ShardPool` -- N single-worker pools with stable shard
  affinity and a prologue broadcast/replay protocol, backing the
  distributed beam solve (``Deco(workers=N)``); shard-resident
  evaluation caches stay warm across beam iterations;
* :mod:`repro.parallel.workers` -- the fork-aware per-worker context:
  module-level task functions plus initializers that rebuild pristine
  ``RngService`` / simulator / Deco state from picklable specs, so
  results are **bit-identical regardless of worker count**.

The determinism contract is inherited from :mod:`repro.common.rng`:
every replication derives its stream statelessly from ``(seed, path)``
via ``spawn_rng``, so splitting the run-id range across processes cannot
perturb any individual run.
"""

from repro.parallel.arena import TensorArena, arena_available
from repro.parallel.executor import (
    ENV_WORKERS,
    ParallelExecutor,
    ShardPool,
    chunk_evenly,
    map_tasks,
    partition_weighted,
    resolve_workers,
    workers_from_env,
)

__all__ = [
    "ENV_WORKERS",
    "ParallelExecutor",
    "ShardPool",
    "TensorArena",
    "arena_available",
    "chunk_evenly",
    "map_tasks",
    "partition_weighted",
    "resolve_workers",
    "workers_from_env",
]
