"""Content-addressed shared-memory tensor plane.

The distributed beam solve (DESIGN.md §13) and the job service's warm
worker pool both ship a *compiled problem* -- multi-megabyte immutable
numpy tensors -- into worker processes.  Before this module they shipped
it by pickling the prologue payload into every worker on every solve
(and again on every respawn).  The arena replaces that with **zero-copy
attachment**: the parent publishes each problem's arrays once into a
POSIX shared-memory segment named by a SHA-256 content key, and workers
map the segment read-only -- the broadcast payload shrinks to the key
plus small per-solve deltas (deadline, fault metadata).

Layout of one segment (all offsets 64-byte aligned)::

    [ 8B magic "DECOARN1" | 1B sealed | 3B pad | 4B meta length ]
    [ meta JSON: per-array name/dtype/shape/offset, free-form extras ]
    [ array 0 bytes ] [ array 1 bytes ] ...

The ``sealed`` byte is written *last*: a concurrent attacher that races
a publisher either sees ``sealed == 1`` (every array byte is in place)
or backs off.  Content addressing makes publish idempotent -- two
processes publishing the same key write identical bytes, so the loser
of a ``FileExistsError`` race simply attaches the winner's segment.

Lifetime: the parent-side :class:`TensorArena` owns its segments (LRU,
``close()``/finalizer unlinks them); attachers own only their mapping
(:class:`AttachedSegment`, closed on LRU eviction or process exit).  A
SIGKILL'd attacher leaks nothing: the kernel drops its mapping and the
segment itself belongs to the publisher.

``multiprocessing.resource_tracker`` discipline (Python < 3.13 registers
every open, including mere attaches, and ``unlink()`` unregisters): our
worker processes inherit the parent's tracker, whose per-name cache is a
*set*, so the create/attach registrations collapse to one entry and the
single ``unlink()`` balances it.  Nothing here unregisters manually --
an extra unregister would evict the publisher's entry and make the
tracker print ``KeyError`` noise on the real unlink, and it would also
forfeit the tracker's cleanup of segments leaked by a crashed parent.
"""

from __future__ import annotations

import hashlib
import json
import struct
import weakref
from collections import OrderedDict
from typing import Mapping

import numpy as np

__all__ = [
    "ArenaError",
    "AttachedSegment",
    "TensorArena",
    "arena_available",
    "attach_segment",
    "content_key",
    "publish_segment",
    "segment_name",
    "unlink_segment",
]

#: Bump when the segment layout changes: the version rides the content
#: key, so readers can never misparse a segment from an older layout.
_LAYOUT_VERSION = b"arena-v1"
_MAGIC = b"DECOARN1"
_ALIGN = 64
#: magic (8s) | sealed flag (B) | 3 pad | meta JSON length (I)
_HEADER = struct.Struct("<8sB3xI")


class ArenaError(RuntimeError):
    """A shared-memory segment is missing, unsealed, or malformed."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def segment_name(key: str) -> str:
    """OS-level shm name for a content key (short: macOS caps at 31)."""
    return "deco" + key[:24]


# Availability ---------------------------------------------------------------

_available: bool | None = None


def arena_available() -> bool:
    """Whether this environment supports POSIX shared memory (probed once).

    Restricted sandboxes (no ``/dev/shm``, seccomp'd ``shm_open``) fail
    the probe; callers fall back to the pickled-prologue path.

    Call this in the parent **before forking workers**: the probe starts
    the ``multiprocessing`` resource tracker, so children inherit the
    parent's tracker instead of each forking their own.  A
    worker-private tracker is a hazard, not just noise -- its pipe dies
    with the worker, at which point it "cleans up" (unlinks!) segments
    the parent still serves to other workers.
    """
    global _available
    if _available is None:
        try:
            from multiprocessing import resource_tracker, shared_memory

            resource_tracker.ensure_running()
            probe = shared_memory.SharedMemory(create=True, size=_ALIGN)
            try:
                probe.buf[:8] = _MAGIC
                _available = bytes(probe.buf[:8]) == _MAGIC
            finally:
                probe.close()
                probe.unlink()
        except Exception:
            _available = False
    return _available


# Content addressing ---------------------------------------------------------


def content_key(arrays: Mapping[str, np.ndarray], extra: bytes = b"") -> str:
    """SHA-256 over array names, dtypes, shapes and raw bytes (+ extras).

    Two problems get the same key iff every hosted array is bitwise
    identical and their non-array metadata (``extra``) matches -- the
    invariant that makes attach-instead-of-recompute sound.
    """
    h = hashlib.sha256(_LAYOUT_VERSION)
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(arr.dtype.str.encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.data.cast("B") if arr.size else b"")
    h.update(extra)
    return h.hexdigest()


# Publishing -----------------------------------------------------------------


def publish_segment(
    key: str, arrays: Mapping[str, np.ndarray], meta: Mapping[str, object] | None = None
):
    """Write ``arrays`` (+ JSON-able ``meta``) into a new sealed segment.

    Returns the owning ``SharedMemory`` handle (caller closes/unlinks).
    Raises ``FileExistsError`` when the key is already published --
    content addressing means the existing segment holds the same bytes,
    so callers attach instead.
    """
    from multiprocessing import shared_memory

    entries = []
    payload: list[tuple[int, np.ndarray]] = []
    offset = 0  # relative to data start; patched after meta is sized
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        offset = _align(offset)
        entries.append(
            {"name": name, "dtype": arr.dtype.str, "shape": list(arr.shape), "offset": offset}
        )
        payload.append((offset, arr))
        offset += arr.nbytes
    doc = {"entries": entries, "meta": dict(meta or {})}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    data_start = _align(_HEADER.size + len(blob))
    total = max(data_start + offset, _ALIGN)

    shm = shared_memory.SharedMemory(name=segment_name(key), create=True, size=total)
    try:
        buf = shm.buf
        _HEADER.pack_into(buf, 0, _MAGIC, 0, len(blob))
        buf[_HEADER.size : _HEADER.size + len(blob)] = blob
        for rel, arr in payload:
            start = data_start + rel
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=buf, offset=start)
            view[...] = arr
            del view  # release the buffer export before any close()
        buf[8] = 1  # seal last: attachers only trust sealed segments
    except BaseException:
        shm.close()
        try:
            shm.unlink()
        except Exception:
            pass
        raise
    return shm


def unlink_segment(key: str) -> bool:
    """Best-effort unlink of a published segment by key (True if it was)."""
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=segment_name(key))
    except Exception:
        return False
    try:
        shm.close()
    except BufferError:
        pass
    try:
        shm.unlink()
    except Exception:
        return False
    return True


# Attaching ------------------------------------------------------------------


def _close_quietly(shm) -> None:
    # Finalizer-safe: close() raises BufferError while numpy views still
    # export the mmap; destruction order at gc time is unspecified, and
    # the mapping dies with the process regardless.
    try:
        shm.close()
    except Exception:
        pass


class AttachedSegment:
    """A reader's zero-copy view of one published segment.

    ``arrays`` maps entry name to a read-only ndarray aliasing the
    shared mapping -- no bytes are copied.  Keep the segment alive for
    as long as any of its arrays is in use; :meth:`close` drops the
    mapping (tolerating live views), and a finalizer does the same for
    abandoned instances.
    """

    __slots__ = ("key", "meta", "arrays", "nbytes", "_shm", "_finalizer", "__weakref__")

    def __init__(self, key: str, shm, arrays: dict[str, np.ndarray], meta: dict):
        self.key = key
        self.meta = meta
        self.arrays = arrays
        self.nbytes = shm.size
        self._shm = shm
        self._finalizer = weakref.finalize(self, _close_quietly, shm)

    def close(self) -> None:
        self._finalizer.detach()
        _close_quietly(self._shm)


def attach_segment(key: str) -> AttachedSegment:
    """Map a published segment read-only; raises :class:`ArenaError`.

    Missing key, an unsealed segment (publisher still writing or died
    mid-write) and a foreign/corrupt header all raise -- callers fall
    back to computing the data locally.
    """
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=segment_name(key))
    except Exception as exc:
        raise ArenaError(f"no shared segment for key {key[:12]}...: {exc}") from exc
    try:
        magic, sealed, meta_len = _HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            raise ArenaError(f"segment {key[:12]}... has a foreign header")
        if sealed != 1:
            raise ArenaError(f"segment {key[:12]}... is not sealed yet")
        doc = json.loads(bytes(shm.buf[_HEADER.size : _HEADER.size + meta_len]))
        data_start = _align(_HEADER.size + meta_len)
        arrays: dict[str, np.ndarray] = {}
        for entry in doc["entries"]:
            arr = np.ndarray(
                tuple(entry["shape"]),
                dtype=np.dtype(entry["dtype"]),
                buffer=shm.buf,
                offset=data_start + entry["offset"],
            )
            arr.setflags(write=False)
            arrays[entry["name"]] = arr
        return AttachedSegment(key, shm, arrays, doc.get("meta", {}))
    except ArenaError:
        _close_quietly(shm)
        raise
    except Exception as exc:
        _close_quietly(shm)
        raise ArenaError(f"segment {key[:12]}... is malformed: {exc}") from exc


# Parent-side publisher ------------------------------------------------------


class TensorArena:
    """Owns published segments with LRU lifetime and publish/hit counters.

    One per engine (or service): :meth:`publish` is idempotent per
    content key; eviction and :meth:`close` unlink the segment name --
    POSIX keeps existing worker mappings valid until *they* close, so
    eviction can never invalidate an in-flight solve.
    """

    def __init__(self, capacity: int = 6):
        self.capacity = max(1, int(capacity))
        self._segments: OrderedDict[str, object] = OrderedDict()
        self.counters = {
            "publishes": 0,
            "hits": 0,
            "evictions": 0,
            "failures": 0,
            "bytes_published": 0,
        }
        # Closes over the segment dict, never self (a self-reference
        # would keep the arena alive forever); runs at gc/interpreter
        # exit for arenas never close()d.
        self._finalizer = weakref.finalize(self, TensorArena._teardown, self._segments)

    @staticmethod
    def _teardown(segments: "OrderedDict[str, object]") -> None:
        for key in list(segments):
            shm = segments.pop(key)
            _close_quietly(shm)
            try:
                shm.unlink()
            except Exception:
                pass

    def __contains__(self, key: str) -> bool:
        return key in self._segments

    def publish(
        self, key: str, arrays: Mapping[str, np.ndarray], meta: Mapping[str, object] | None = None
    ) -> bool:
        """Ensure ``key`` is published; True when workers can attach it."""
        if key in self._segments:
            self._segments.move_to_end(key)
            self.counters["hits"] += 1
            return True
        if not arena_available():
            self.counters["failures"] += 1
            return False
        try:
            shm = publish_segment(key, arrays, meta)
        except FileExistsError:
            # A previous run (or a sibling process) already published this
            # content; adopt it if sealed, replace it if it never sealed.
            try:
                seg = attach_segment(key)
            except ArenaError:
                unlink_segment(key)
                try:
                    shm = publish_segment(key, arrays, meta)
                except Exception:
                    self.counters["failures"] += 1
                    return False
            else:
                seg.close()
                self.counters["hits"] += 1
                return True
        except Exception:
            self.counters["failures"] += 1
            return False
        self._segments[key] = shm
        self.counters["publishes"] += 1
        self.counters["bytes_published"] += shm.size
        while len(self._segments) > self.capacity:
            old_key, old = self._segments.popitem(last=False)
            _close_quietly(old)
            try:
                old.unlink()
            except Exception:
                pass
            self.counters["evictions"] += 1
        return True

    def stats(self) -> dict:
        out = dict(self.counters)
        out["segments"] = len(self._segments)
        out["available"] = arena_available()
        return out

    def close(self) -> None:
        """Unlink every owned segment (idempotent)."""
        self._finalizer.detach()
        TensorArena._teardown(self._segments)
