"""Dominance analysis: proofs that transformation ops cannot help.

Two granularities share the :class:`OpMask` product:

* **Program-level** (the :class:`DominancePass`): structural facts
  that disable whole op families -- with a single instance type,
  Promote/Demote have no moves; on a pure chain (every level width 1)
  the consolidation family (merge / co-schedule) is vacuous because
  the schedule is already serialized.

* **State-level** (:func:`futile_offpath_promotes`, consumed by
  :class:`~repro.solver.search.GenericSearch` during child
  generation): an *off-path exploration promote* of task ``i`` is
  **futile** when the longest path through ``i``, computed with
  per-cell **upper** bounds under the parent's assignment (and ``i``
  widened to the promoted type's upper bound), is strictly below the
  makespan **lower** bound (the longest path under per-cell lower
  bounds).  Then ``i`` is critical in *no* realization, so the
  child's makespan samples -- and with them its deadline
  probability, feasibility flag and mean makespan -- are bitwise
  identical to the parent's: paths avoiding ``i`` are unchanged and
  attain the max in every sample.  The only thing the promote *can*
  change is the (deterministic, Eq.-1) cost, which the search
  recomputes exactly.  The op thus provably cannot help the one
  purpose of an exploration promote (finding realizations where the
  off-mean-path task turns critical), and the search settles the
  child with the parent's exact evaluation instead of paying full
  makespan propagation for it.  The flagged child still consumes
  evaluation budget, enters the visited set, and passes the analytic
  and prefix screening tiers like any other candidate -- only the
  final full-MC evaluation is replaced -- so the search trajectory is
  provably unchanged; plan identity with the mask off is asserted by
  the property tests and the solver bench.

The per-cell bounds come from the sample tensor when a compiled
problem is at hand (:func:`compute_op_mask` -- tight, what the solver
uses) or from the sampling-free support bounds
(:func:`op_mask_from_bounds` -- what the program-level pass uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.passes import AnalysisContext, AnalysisPass

if TYPE_CHECKING:  # pragma: no cover
    from repro.solver.backends import CompiledProblem

__all__ = [
    "OpMask",
    "compute_op_mask",
    "op_mask_from_bounds",
    "futile_offpath_promotes",
    "DominancePass",
]

#: The transformation-op vocabulary the mask can disable.
KNOWN_OPS = frozenset({"promote", "demote", "merge", "co_schedule"})


@dataclass(frozen=True)
class OpMask:
    """Per-program dominance facts for the transformation search.

    ``lo``/``hi`` are ``(K, N)`` per-(type, task) bounds bracketing
    every realization the evaluator can produce;
    ``promote_cost_up[t, i]`` says promoting task ``i`` from type ``t``
    never lowers Eq.-1 cost (row ``K-1`` is ``False``: no promote
    exists there) -- informational for consolidation-style passes; the
    futility predicate does not need it because the settled child's
    cost is recomputed exactly either way.  ``disabled_ops`` are op
    families proved vacuous
    for the whole program.  ``source`` records which bound family
    backs the mask (``"tensor"`` = sample min/max, ``"support"`` =
    sampling-free support bounds); ``sample_token`` ties a
    tensor-backed mask to the problem generation it was computed from.
    """

    lo: np.ndarray = field(repr=False)
    hi: np.ndarray = field(repr=False)
    promote_cost_up: np.ndarray = field(repr=False)
    disabled_ops: frozenset[str] = frozenset()
    source: str = "tensor"
    sample_token: int | None = None

    def __post_init__(self) -> None:
        unknown = self.disabled_ops - KNOWN_OPS
        if unknown:
            raise ValueError(f"unknown transformation ops: {sorted(unknown)}")

    def allows(self, op: str) -> bool:
        """Whether the search may still generate ``op`` children."""
        return op not in self.disabled_ops

    @property
    def num_types(self) -> int:
        return int(self.lo.shape[0])

    @property
    def num_tasks(self) -> int:
        return int(self.lo.shape[1])


def _structural_disabled(
    parent_indices: tuple[tuple[int, ...], ...], num_types: int
) -> frozenset[str]:
    """Op families the task-graph/catalog structure proves vacuous."""
    disabled: set[str] = set()
    if num_types <= 1:
        # The type ladder has one rung: every task is simultaneously on
        # the fastest and the cheapest type.
        disabled |= {"promote", "demote"}
    if _max_level_width(parent_indices) <= 1:
        # A pure chain: every level already holds one task, so the
        # consolidation family has nothing to merge or co-schedule.
        disabled |= {"merge", "co_schedule"}
    return frozenset(disabled)


def _max_level_width(parent_indices: tuple[tuple[int, ...], ...]) -> int:
    """Width of the widest topological level (1 for chains)."""
    n = len(parent_indices)
    if not n:
        return 0
    depth = [0] * n
    for i, parents in enumerate(parent_indices):
        depth[i] = 1 + max((depth[p] for p in parents), default=-1)
    width: dict[int, int] = {}
    for d in depth:
        width[d] = width.get(d, 0) + 1
    return max(width.values())


def _promote_cost_up(mean_times: np.ndarray, prices: np.ndarray) -> np.ndarray:
    """(K, N) bools: promoting from row t never lowers Eq.-1 cost."""
    cells = mean_times * prices[:, None]
    up = np.zeros(cells.shape, dtype=bool)
    if cells.shape[0] > 1:
        up[:-1] = cells[1:] >= cells[:-1]
    return up


def op_mask_from_bounds(
    lo: np.ndarray,
    hi: np.ndarray,
    mean_times: np.ndarray,
    prices: np.ndarray,
    parent_indices: tuple[tuple[int, ...], ...],
    source: str = "support",
    sample_token: int | None = None,
) -> OpMask:
    """Assemble an :class:`OpMask` from per-cell bounds."""
    return OpMask(
        lo=np.asarray(lo, dtype=float),
        hi=np.asarray(hi, dtype=float),
        promote_cost_up=_promote_cost_up(np.asarray(mean_times), np.asarray(prices)),
        disabled_ops=_structural_disabled(parent_indices, int(lo.shape[0])),
        source=source,
        sample_token=sample_token,
    )


def compute_op_mask(problem: "CompiledProblem") -> OpMask:
    """The tensor-backed mask for a compiled problem.

    Per-cell bounds are the sample min/max over the problem's own
    Monte Carlo tensor -- by construction they bracket exactly the
    realizations the evaluator will ever see, so they are the tightest
    sound bounds available (and much tighter than the support bounds).
    """
    return op_mask_from_bounds(
        lo=problem.tensor.min(axis=1),
        hi=problem.tensor.max(axis=1),
        mean_times=problem.mean_times,
        prices=problem.prices,
        parent_indices=problem.parent_indices,
        source="tensor",
        sample_token=getattr(problem, "sample_token", None),
    )


def futile_offpath_promotes(
    mask: OpMask,
    parent_indices: tuple[tuple[int, ...], ...],
    assignment: np.ndarray,
) -> np.ndarray:
    """``(N,)`` bools: promoting task ``i`` cannot change any makespan sample.

    True when task ``i`` is provably never critical under the widened
    upper bound (see the module docstring); the caller applies it to
    off-critical-path exploration promotes only -- a critical-path
    promote is by construction aimed at a task that *is* critical.
    """
    n = len(parent_indices)
    idx = np.arange(n)
    k = mask.num_types
    lo_now = mask.lo[assignment, idx]
    hi_now = mask.hi[assignment, idx]

    # Forward longest-path finish times under lo / hi cell bounds, and
    # children lists for the backward tail pass.
    lo_list = lo_now.tolist()
    hi_list = hi_now.tolist()
    fin_lo = [0.0] * n
    fin_hi = [0.0] * n
    children: list[list[int]] = [[] for _ in range(n)]
    for i, parents in enumerate(parent_indices):
        s_lo = 0.0
        s_hi = 0.0
        for p in parents:
            children[p].append(i)
            if fin_lo[p] > s_lo:
                s_lo = fin_lo[p]
            if fin_hi[p] > s_hi:
                s_hi = fin_hi[p]
        fin_lo[i] = s_lo + lo_list[i]
        fin_hi[i] = s_hi + hi_list[i]
    tail_hi = [0.0] * n
    for i in range(n - 1, -1, -1):
        best = 0.0
        for c in children[i]:
            v = tail_hi[c] + hi_list[c]
            if v > best:
                best = v
        tail_hi[i] = best

    lb_makespan = max(fin_lo, default=0.0)
    # Widen task i's own cell to the promoted type's upper bound: the
    # path-through-i bound must cover the child's assignment too.
    next_type = np.minimum(assignment + 1, k - 1)
    hi_widened = np.maximum(hi_now, mask.hi[next_type, idx])
    through_hi = np.asarray(fin_hi) - hi_now + hi_widened + np.asarray(tail_hi)
    return np.asarray(through_hi < lb_makespan)


class DominancePass(AnalysisPass):
    """Publish the program-level :class:`OpMask` (support-bound backed)."""

    name = "dominance"
    requires = ("support_lo", "support_hi", "mean_times", "prices", "parent_indices")
    provides = ("op_mask",)

    def run(self, ctx: AnalysisContext) -> bool:
        if "op_mask" in ctx.facts:
            return False
        mask = op_mask_from_bounds(
            lo=ctx.facts["support_lo"],  # type: ignore[arg-type]
            hi=ctx.facts["support_hi"],  # type: ignore[arg-type]
            mean_times=ctx.facts["mean_times"],  # type: ignore[arg-type]
            prices=ctx.facts["prices"],  # type: ignore[arg-type]
            parent_indices=ctx.facts["parent_indices"],  # type: ignore[arg-type]
        )
        ctx.put("op_mask", mask)
        return True
