"""The interval abstract domain.

One value type: :class:`Interval`, a closed range ``[lo, hi]`` of
reals.  The passes in this package propagate intervals through the
task graph (makespan) and the cost sum (Eq. 1); the domain operations
here are the usual interval arithmetic, each sound in the sense that
the concrete result of the operation on any members of the operand
intervals lies in the result interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ValidationError

__all__ = ["Interval"]


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` over the extended reals."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValidationError("interval bounds must not be NaN")
        if self.lo > self.hi:
            raise ValidationError(f"empty interval: lo {self.lo} > hi {self.hi}")

    @classmethod
    def point(cls, value: float) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return cls(float(value), float(value))

    @classmethod
    def top(cls) -> "Interval":
        """The unbounded interval (no information)."""
        return cls(-math.inf, math.inf)

    # Arithmetic -----------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def scale(self, factor: float) -> "Interval":
        """Multiply by a nonnegative constant."""
        if factor < 0:
            raise ValidationError(f"scale factor must be >= 0, got {factor}")
        return Interval(self.lo * factor, self.hi * factor)

    def max(self, other: "Interval") -> "Interval":
        """Interval of ``max(x, y)`` for x, y in the operands."""
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def join(self, other: "Interval") -> "Interval":
        """Least upper bound in the domain lattice (the convex hull)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # Queries --------------------------------------------------------------

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def certainly_above(self, bound: float) -> bool:
        """Every concrete value exceeds ``bound``."""
        return self.lo > bound

    def certainly_at_most(self, bound: float) -> bool:
        """Every concrete value is <= ``bound``."""
        return self.hi <= bound

    def __str__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"
