"""The pass manager: a fixpoint driver over analysis passes.

An :class:`AnalysisPass` declares the blackboard keys it *requires*
and *provides*; the :class:`PassManager` runs the registered passes to
a fixpoint: each round, every pass whose requirements are present on
the shared :class:`AnalysisContext` runs, and rounds repeat while any
pass reports a change (new facts or new diagnostics), up to an
iteration cap.  The contract per pass:

* ``run(ctx)`` returns ``True`` iff it changed the context (wrote a
  new fact key or emitted a diagnostic);
* a pass must be *idempotent*: running twice on an unchanged context
  reports no change the second time (this is what makes the fixpoint
  terminate);
* facts are write-once -- passes communicate by adding keys, never by
  mutating another pass's product.

:func:`analyze_semantics` is the one-call driver: resolve the
program's imports against the registry (workflow + catalog objects,
*without* materializing histograms -- bound inference must stay in the
millisecond range for the admission-control gate), run the default
pipeline, and return an :class:`AnalysisReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.common.errors import ValidationError
from repro.wlog.diagnostics import CHECKS, Diagnostic, Span
from repro.wlog.imports import ImportRegistry
from repro.wlog.program import ConsSpec, WLogProgram

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.dominance import OpMask
    from repro.cloud.instance_types import Catalog
    from repro.workflow.dag import Workflow
    from repro.workflow.runtime_model import RuntimeModel

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisReport",
    "PassManager",
    "analyze_semantics",
    "default_passes",
]


@dataclass
class AnalysisContext:
    """The shared blackboard the passes read from and write to."""

    program: WLogProgram
    filename: str = "<program>"
    registry: ImportRegistry | None = None
    workflow: "Workflow | None" = None
    catalog: "Catalog | None" = None
    region: str | None = None
    runtime_model: "RuntimeModel | None" = None
    #: Write-once inter-pass products, keyed by the names passes declare
    #: in ``provides`` (e.g. ``"support_lo"``, ``"makespan_interval"``).
    facts: dict[str, object] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def source(self) -> str:
        return self.program.source

    def emit(self, check: str, message: str, span: Span | None = None) -> None:
        """Record one finding (severity defaulted from the catalog)."""
        self.diagnostics.append(
            Diagnostic(check=check, severity=CHECKS[check][1], message=message, span=span)
        )

    def put(self, key: str, value: object) -> None:
        """Publish a fact; re-publishing an existing key is a bug."""
        if key in self.facts:
            raise ValidationError(f"analysis fact {key!r} published twice")
        self.facts[key] = value

    def span_of_cons(self, spec: ConsSpec) -> Span | None:
        """Source span of the directive that declared ``spec``."""
        for d in self.program.directives:
            if d.kind == "cons" and d.payload is spec:
                return d.span
        return None


class AnalysisPass:
    """Base class: one semantic analysis pass.

    Subclasses set ``name`` and optionally ``requires``/``provides``
    (blackboard keys), and implement :meth:`run` returning whether the
    context changed.
    """

    name: str = "<unnamed>"
    #: Fact keys that must be on the blackboard before this pass runs.
    requires: tuple[str, ...] = ()
    #: Fact keys this pass publishes (informational; enforced only in
    #: that :meth:`AnalysisContext.put` rejects double publication).
    provides: tuple[str, ...] = ()

    def run(self, ctx: AnalysisContext) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class AnalysisReport:
    """Outcome of a semantic analysis run."""

    diagnostics: tuple[Diagnostic, ...]
    facts: dict[str, object]
    passes_run: tuple[str, ...]
    iterations: int

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.is_error)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if not d.is_error)

    @property
    def op_mask(self) -> "OpMask | None":
        mask = self.facts.get("op_mask")
        return mask  # type: ignore[return-value]


class PassManager:
    """Run passes to a fixpoint over a shared context.

    ``max_iterations`` caps the rounds: well-behaved (idempotent)
    passes converge in two rounds -- one that changes things, one that
    confirms quiescence -- so the cap only guards against buggy passes.
    """

    def __init__(self, passes: Sequence[AnalysisPass], max_iterations: int = 8):
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        names = [p.name for p in passes]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate pass names: {names}")
        self.passes = tuple(passes)
        self.max_iterations = int(max_iterations)

    def run(self, ctx: AnalysisContext) -> tuple[tuple[str, ...], int]:
        """Drive the fixpoint; returns (passes that ran, iterations)."""
        ran: list[str] = []
        iterations = 0
        for _ in range(self.max_iterations):
            iterations += 1
            changed = False
            for p in self.passes:
                if any(key not in ctx.facts for key in p.requires):
                    continue
                if p.run(ctx):
                    changed = True
                    if p.name not in ran:
                        ran.append(p.name)
            if not changed:
                break
        return tuple(ran), iterations


def default_passes() -> tuple[AnalysisPass, ...]:
    """The standard pipeline, in dependency order."""
    from repro.analysis.bounds import BoundsPass
    from repro.analysis.deadcode import ConstantConditionPass, DeadRulePass, ShadowedFactPass
    from repro.analysis.dominance import DominancePass

    return (
        ConstantConditionPass(),
        DeadRulePass(),
        ShadowedFactPass(),
        BoundsPass(),
        DominancePass(),
    )


def _resolve_imports(ctx: AnalysisContext) -> None:
    """Bind the program's imports to registry objects, sans histograms.

    Unknown imports are the syntactic analyzer's E210; here they simply
    leave the semantic slots empty so the bound passes skip.  Programs
    importing several workflows (none bundled do) also skip bound
    inference -- a single task graph is what the interval propagation
    is defined over.
    """
    registry = ctx.registry
    if registry is None:
        return
    workflows = []
    for name in ctx.program.imports:
        wf = registry.workflow(name)
        if wf is not None:
            workflows.append(wf)
            continue
        cloud = registry.cloud(name)
        if cloud is not None and ctx.catalog is None:
            ctx.catalog, ctx.region = cloud
    if len(workflows) == 1:
        ctx.workflow = workflows[0]
    if ctx.catalog is not None and ctx.runtime_model is None:
        ctx.runtime_model = registry.runtime_model_for(ctx.catalog)


def analyze_semantics(
    source_or_program: str | WLogProgram,
    *,
    registry: ImportRegistry | None = None,
    filename: str = "<program>",
    passes: Sequence[AnalysisPass] | None = None,
) -> AnalysisReport:
    """Run the semantic pass pipeline over one program.

    This is deliberately cheap: imports resolve to the registry's
    workflow/catalog *objects* (no histogram materialization, no IR
    translation), so infeasible programs are rejected in milliseconds
    -- the admission-control budget the service layer needs.
    """
    program = (
        WLogProgram.from_source(source_or_program)
        if isinstance(source_or_program, str)
        else source_or_program
    )
    ctx = AnalysisContext(program=program, filename=filename, registry=registry)
    _resolve_imports(ctx)
    manager = PassManager(tuple(passes) if passes is not None else default_passes())
    ran, iterations = manager.run(ctx)
    return AnalysisReport(
        diagnostics=tuple(sorted(ctx.diagnostics, key=lambda d: d.sort_key())),
        facts=dict(ctx.facts),
        passes_run=ran,
        iterations=iterations,
    )
