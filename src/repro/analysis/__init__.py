"""Semantic static analysis over the compiled constraint IR.

PR 2's linter (:mod:`repro.wlog.analysis`) is syntactic: undefined
predicates, arities, binding, stratification.  This package is the
*semantic* layer -- abstract interpretation of what the compiled
problem can possibly do, before any solve:

* :mod:`repro.analysis.bounds` -- interval inference: best/worst-case
  makespan and cost propagated through the task graph and compared
  against the program's ``deadline``/``budget``/``reliability``
  constraints (checks E401-E403, W401-W402);
* :mod:`repro.analysis.dominance` -- the :class:`OpMask`: per-program
  proofs that some transformation ops cannot help, consumed by
  :class:`~repro.solver.search.GenericSearch` to prune child
  generation without changing the returned plan;
* :mod:`repro.analysis.deadcode` -- dead-rule elimination and constant
  folding on the WLog program itself (W403-W405);
* :mod:`repro.analysis.passes` -- the pass manager: a fixpoint driver
  over declared-dependency passes sharing one blackboard;
* :mod:`repro.analysis.sarif` -- the SARIF 2.1.0 emitter shared by
  ``repro lint`` and ``repro analyze``.

The one-call entry point is :func:`analyze_semantics`; the engine's
fast-fail gate is ``Deco.solve_program(analyze=True)``.
"""

from __future__ import annotations

from repro.analysis.bounds import BoundsPass, cost_interval, makespan_interval, support_bounds
from repro.analysis.deadcode import ConstantConditionPass, DeadRulePass, ShadowedFactPass, fold_program
from repro.analysis.domain import Interval
from repro.analysis.dominance import (
    DominancePass,
    OpMask,
    compute_op_mask,
    futile_offpath_promotes,
    op_mask_from_bounds,
)
from repro.analysis.passes import (
    AnalysisContext,
    AnalysisPass,
    AnalysisReport,
    PassManager,
    analyze_semantics,
    default_passes,
)
from repro.analysis.sarif import to_sarif

__all__ = [
    "Interval",
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisReport",
    "PassManager",
    "analyze_semantics",
    "default_passes",
    "BoundsPass",
    "support_bounds",
    "makespan_interval",
    "cost_interval",
    "DominancePass",
    "OpMask",
    "compute_op_mask",
    "op_mask_from_bounds",
    "futile_offpath_promotes",
    "ConstantConditionPass",
    "DeadRulePass",
    "ShadowedFactPass",
    "fold_program",
    "to_sarif",
]
