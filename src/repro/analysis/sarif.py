"""SARIF 2.1.0 emission, shared by ``repro lint`` and ``repro analyze``.

One run, one driver (``repro-wlog``); the rule table carries only the
checks actually referenced by results, each with its catalog name,
description and default severity, so GitHub code scanning renders the
whole E1xx-W4xx stream from either command identically.
"""

from __future__ import annotations

from repro.wlog.diagnostics import CHECKS, Diagnostic

__all__ = ["to_sarif", "SARIF_VERSION", "SARIF_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "repro-wlog"
_TOOL_URI = "https://github.com/deco-repro/repro"


def _rule_object(check: str) -> dict:
    name, severity, description = CHECKS.get(check, (check, "warning", check))
    return {
        "id": check,
        "name": name,
        "shortDescription": {"text": description},
        "defaultConfiguration": {"level": severity},
    }


def _result_object(filename: str, diag: Diagnostic, rule_index: int) -> dict:
    result: dict = {
        "ruleId": diag.check,
        "ruleIndex": rule_index,
        "level": diag.severity,
        "message": {"text": diag.message},
    }
    region: dict = {}
    if diag.span is not None:
        region = {"startLine": diag.span.line, "startColumn": diag.span.column}
        if diag.span.end_column:
            region["endLine"] = diag.span.end_line
            region["endColumn"] = diag.span.end_column
    location: dict = {"physicalLocation": {"artifactLocation": {"uri": filename}}}
    if region:
        location["physicalLocation"]["region"] = region
    result["locations"] = [location]
    return result


def to_sarif(findings: list[tuple[str, Diagnostic]]) -> dict:
    """A SARIF 2.1.0 log for ``(filename, diagnostic)`` findings.

    Filenames should be relative paths (SARIF artifact URIs); stdin or
    in-memory programs conventionally pass ``"<stdin>"``/``"<program>"``.
    """
    rule_ids: list[str] = []
    rule_index: dict[str, int] = {}
    results: list[dict] = []
    for filename, diag in findings:
        if diag.check not in rule_index:
            rule_index[diag.check] = len(rule_ids)
            rule_ids.append(diag.check)
        results.append(_result_object(filename, diag, rule_index[diag.check]))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": [_rule_object(cid) for cid in rule_ids],
                    }
                },
                "results": results,
            }
        ],
    }
