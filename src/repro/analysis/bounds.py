"""Interval/bound inference over the compiled constraint semantics.

The sampler's task-time model is ``t = cpu + data/io_bw + data/net_bw``
with both bandwidths clamped at ``_MIN_BANDWIDTH`` from below
(:mod:`repro.workflow.runtime_model`), so every Monte Carlo
realization of a (type, task) cell lies in the *support interval*

    ``[cpu_seconds,  cpu_seconds + 2 * data_bytes / _MIN_BANDWIDTH]``

regardless of the calibrated bandwidth distributions.  These
sampling-free cell bounds are what makes the pass cheap enough for an
admission-control gate: no histogram materialization, no tensor.

From the cells, :func:`makespan_interval` propagates a critical-path
interval through the task graph (longest path under per-task
min-over-types lower bounds vs. max-over-types upper bounds), and
:func:`cost_interval` sums the per-task best/worst Eq.-1 cost.
Compared against the program's constraints these prove:

* **E401** deadline unreachable -- the makespan lower bound already
  exceeds the deadline: *no* assignment can meet it, under *any*
  bandwidth draw;
* **E402** budget unreachable -- even all-cheapest mean cost exceeds
  the budget;
* **E403** reliability unreachable -- the declared fault model's
  closed-form success probability (assignment-free) misses the
  required level;
* **W401/W402** vacuous deadline/budget -- the *worst*-case bound
  already satisfies the constraint, so it can never bind and the
  search degenerates to unconstrained cost minimization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.domain import Interval
from repro.analysis.passes import AnalysisContext, AnalysisPass
from repro.wlog.program import ConsSpec
from repro.wlog.terms import to_python
from repro.workflow.runtime_model import _MIN_BANDWIDTH, RuntimeModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.instance_types import Catalog
    from repro.workflow.dag import Workflow

__all__ = [
    "support_bounds",
    "parent_index_tuples",
    "longest_path",
    "makespan_interval",
    "cost_interval",
    "BoundsPass",
]

#: Eq. 1 charges per instance-hour.
_SECONDS_PER_HOUR = 3600.0


def support_bounds(
    workflow: "Workflow",
    catalog: "Catalog",
    model: RuntimeModel | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(lo, hi)`` support bounds, each ``(K, N)`` like the sample tensor.

    ``lo[k, i] <= t[k, s, i] <= hi[k, i]`` for every sample ``s`` the
    runtime model can ever draw (bandwidths are clamped at
    ``_MIN_BANDWIDTH`` from below and unbounded above).
    """
    model = model or RuntimeModel(catalog)
    names = catalog.type_names
    n = len(workflow)
    lo = np.empty((len(names), n))
    hi = np.empty((len(names), n))
    for k, type_name in enumerate(names):
        for i, tid in enumerate(workflow.task_ids):
            comp = model.components(workflow.task(tid), type_name)
            lo[k, i] = comp.cpu_seconds
            hi[k, i] = comp.cpu_seconds + (comp.io_bytes + comp.net_bytes) / _MIN_BANDWIDTH
    return lo, hi


def parent_index_tuples(workflow: "Workflow") -> tuple[tuple[int, ...], ...]:
    """Dense parent indices in topological task order (compiler layout)."""
    return tuple(
        tuple(workflow.index_of(p) for p in workflow.parents(tid))
        for tid in workflow.task_ids
    )


def longest_path(parent_indices: tuple[tuple[int, ...], ...], times: np.ndarray) -> float:
    """Longest-path length (makespan) under per-task times."""
    vals = times.tolist()
    n = len(vals)
    if not n:
        return 0.0
    finish = [0.0] * n
    for i, parents in enumerate(parent_indices):
        start = max((finish[p] for p in parents), default=0.0)
        finish[i] = start + vals[i]
    return max(finish)


def makespan_interval(
    parent_indices: tuple[tuple[int, ...], ...],
    lo: np.ndarray,
    hi: np.ndarray,
) -> Interval:
    """Interval bracketing the makespan of *every* assignment and sample.

    Lower bound: the critical path when every task takes its
    min-over-types lower bound (monotonicity of longest path in task
    times makes this <= any realized makespan).  Upper bound: the
    critical path under max-over-types upper bounds -- note this is the
    *parallel* worst case, which is what the deadline constraint
    measures (``maxtime`` is path time, not serialized time).
    """
    return Interval(
        longest_path(parent_indices, lo.min(axis=0)),
        longest_path(parent_indices, hi.max(axis=0)),
    )


def cost_interval(mean_times: np.ndarray, prices: np.ndarray) -> Interval:
    """Interval bracketing the Eq.-1 expected cost of every assignment.

    Cost is deterministic given the assignment (mean times x prices),
    so the interval is exact over the assignment lattice: per task,
    the cheapest vs. costliest type choice.
    """
    cells = mean_times * prices[:, None] / _SECONDS_PER_HOUR
    return Interval(float(cells.min(axis=0).sum()), float(cells.max(axis=0).sum()))


def _requirement_level_bound(spec: ConsSpec) -> tuple[float, float] | None:
    """``(percent_level, bound)`` of a deadline/budget/reliability cons."""
    req = spec.requirement
    if req is None or not hasattr(req, "args") or len(req.args) != 2:
        return None
    try:
        level = float(to_python(req.args[0]))
        bound = float(to_python(req.args[1]))
    except Exception:
        return None
    return level, bound


class BoundsPass(AnalysisPass):
    """Interval inference + the E401-E403 / W401-W402 checks."""

    name = "bounds"
    provides = (
        "support_lo",
        "support_hi",
        "mean_times",
        "prices",
        "parent_indices",
        "makespan_interval",
        "cost_interval",
    )

    def run(self, ctx: AnalysisContext) -> bool:
        if "makespan_interval" in ctx.facts:
            return False  # already ran (idempotence)
        wf, catalog = ctx.workflow, ctx.catalog
        if wf is None or catalog is None:
            return False  # nothing semantic to bound (e.g. ensemble programs)
        model = ctx.runtime_model or RuntimeModel(catalog)
        lo, hi = support_bounds(wf, catalog, model)
        mean_times = model.mean_matrix(wf)
        prices = np.asarray([catalog.price(name, ctx.region) for name in catalog.type_names])
        parents = parent_index_tuples(wf)
        mk = makespan_interval(parents, lo, hi)
        cost = cost_interval(mean_times, prices)
        ctx.put("support_lo", lo)
        ctx.put("support_hi", hi)
        ctx.put("mean_times", mean_times)
        ctx.put("prices", prices)
        ctx.put("parent_indices", parents)
        ctx.put("makespan_interval", mk)
        ctx.put("cost_interval", cost)

        for spec in ctx.program.constraints:
            kind = spec.requirement_kind()
            span = ctx.span_of_cons(spec)
            parsed = _requirement_level_bound(spec)
            if parsed is None:
                continue  # malformed requirements are the linter's E203
            _level, bound = parsed
            if kind == "deadline":
                if mk.certainly_above(bound):
                    ctx.emit(
                        "E401",
                        f"deadline provably unreachable: makespan lower bound "
                        f"{mk.lo:.0f}s > deadline {bound:g}s (critical path on the "
                        f"fastest type, best-case bandwidth)",
                        span,
                    )
                elif mk.certainly_at_most(bound):
                    ctx.emit(
                        "W401",
                        f"deadline non-binding: worst-case makespan {mk.hi:.0f}s "
                        f"<= deadline {bound:g}s -- constraint is vacuous",
                        span,
                    )
            elif kind == "budget":
                if cost.certainly_above(bound):
                    ctx.emit(
                        "E402",
                        f"budget provably unreachable: cost lower bound "
                        f"${cost.lo:.4f} > budget ${bound:g} (every task on its "
                        f"cheapest type)",
                        span,
                    )
                elif cost.certainly_at_most(bound):
                    ctx.emit(
                        "W402",
                        f"budget non-binding: worst-case cost ${cost.hi:.4f} "
                        f"<= budget ${bound:g} -- constraint is vacuous",
                        span,
                    )
            elif kind == "reliability":
                self._check_reliability(ctx, spec, span)
        return True

    @staticmethod
    def _check_reliability(ctx: AnalysisContext, spec: ConsSpec, span) -> None:
        """E403: the fault model caps success probability below the level.

        The closed-form plan success probability is assignment-free
        (``(1 - rate**(R+1)) ** num_tasks``), so this is an exact
        feasibility decision, not a bound.
        """
        fault_spec = ctx.program.fault_spec
        wf = ctx.workflow
        parsed = _requirement_level_bound(spec)
        if fault_spec is None or wf is None or parsed is None:
            return  # a missing fault_model is the linter's E211
        level, retries = parsed
        from repro.faults.recovery import RecoveryPolicy

        try:
            policy = RecoveryPolicy(max_retries=int(retries))
            achieved = fault_spec.to_fault_model().plan_success_probability(len(wf), policy)
        except Exception:
            return  # malformed numbers are the linter's E203/E211
        required = level / 100.0
        if achieved < required:
            ctx.emit(
                "E403",
                f"reliability provably unreachable: P(all {len(wf)} tasks succeed) "
                f"= {achieved:.4f} < required {required:.4f} under "
                f"fault_model(rate={fault_spec.rate:g}) with {int(retries)} retries",
                span,
            )
