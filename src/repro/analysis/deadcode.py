"""Dead-rule elimination and constant folding on the WLog program.

Purely syntactic semantics -- no registry needed -- but *semantic* in
what it concludes: a ground arithmetic comparison in a rule body is a
compile-time constant, so

* if it folds to **true**, the literal is dead weight (W403
  ``constant-condition``) and :func:`fold_program` drops it;
* if it folds to **false**, the whole rule can never fire (W404
  ``dead-rule``) and :func:`fold_program` removes the rule;
* a ground ``is/2`` right-hand side is foldable arithmetic (W403).

W405 (``pragma-shadowed-fact``) flags in-source facts whose family the
program *also* declares via a ``/* lint: assume name/arity */`` pragma:
the pragma says "these facts arrive from outside", so an in-source
copy is either stale test scaffolding or a shadowing bug.

Unreachable-rule elimination w.r.t. the goal is already the syntactic
analyzer's W304; this module does not duplicate it.
"""

from __future__ import annotations

from repro.analysis.passes import AnalysisContext, AnalysisPass
from repro.wlog.analysis import pragma_assumes
from repro.wlog.builtins import _ARITH_BINOPS, _ARITH_UNOPS
from repro.wlog.program import WLogProgram
from repro.wlog.terms import Num, Rule, Struct, Term

__all__ = [
    "fold_term",
    "fold_comparison",
    "fold_program",
    "ConstantConditionPass",
    "DeadRulePass",
    "ShadowedFactPass",
]

_COMPARE = {
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


def fold_term(term: Term) -> float | None:
    """Evaluate a ground arithmetic expression; None when not foldable."""
    if isinstance(term, Num):
        return float(term.value)
    if isinstance(term, Struct):
        if len(term.args) == 2 and term.functor in _ARITH_BINOPS:
            a, b = fold_term(term.args[0]), fold_term(term.args[1])
            if a is None or b is None:
                return None
            try:
                return float(_ARITH_BINOPS[term.functor](a, b))
            except (ArithmeticError, ValueError):
                return None
        if len(term.args) == 1 and term.functor in _ARITH_UNOPS:
            a = fold_term(term.args[0])
            if a is None:
                return None
            try:
                return float(_ARITH_UNOPS[term.functor](a))
            except (ArithmeticError, ValueError):
                return None
    return None


def fold_comparison(goal: Term) -> bool | None:
    """Statically decide a ground comparison literal; None if undecidable."""
    if not isinstance(goal, Struct) or goal.arity != 2 or goal.functor not in _COMPARE:
        return None
    a, b = fold_term(goal.args[0]), fold_term(goal.args[1])
    if a is None or b is None:
        return None
    return bool(_COMPARE[goal.functor](a, b))


def _is_foldable_is(goal: Term) -> bool:
    """``X is <ground arithmetic>`` -- the binding is a compile-time constant."""
    return (
        isinstance(goal, Struct)
        and goal.indicator == ("is", 2)
        and fold_term(goal.args[1]) is not None
    )


def _rule_verdicts(rule: Rule) -> tuple[bool, list[tuple[Term, bool]]]:
    """(statically dead, [(literal, folded truth) for decidable literals])."""
    decided: list[tuple[Term, bool]] = []
    dead = False
    for goal in rule.body:
        truth = fold_comparison(goal)
        if truth is not None:
            decided.append((goal, truth))
            if not truth:
                dead = True
    return dead, decided


def fold_program(program: WLogProgram) -> WLogProgram:
    """The program with dead rules removed and true constants dropped.

    Semantics-preserving: a statically false condition makes its rule
    unsatisfiable (removing the rule removes no derivable fact), and a
    statically true condition always succeeds without bindings
    (comparisons bind nothing), so dropping it changes no answer.
    """
    kept: list[Rule] = []
    for rule in program.rules:
        dead, decided = _rule_verdicts(rule)
        if dead:
            continue
        true_literals = {id(g) for g, truth in decided if truth}
        if true_literals:
            rule = Rule(
                head=rule.head,
                body=tuple(g for g in rule.body if id(g) not in true_literals),
                span=rule.span,
            )
        kept.append(rule)
    return WLogProgram(kept, program.directives, source=program.source)


def _span_of(goal: Term, rule: Rule):
    return getattr(goal, "span", None) or rule.span


class ConstantConditionPass(AnalysisPass):
    """W403: statically decidable conditions and foldable arithmetic."""

    name = "constant-condition"
    provides = ("pass:constant-condition",)

    def run(self, ctx: AnalysisContext) -> bool:
        if "pass:constant-condition" in ctx.facts:
            return False
        ctx.put("pass:constant-condition", True)
        emitted = False
        for rule in ctx.program.rules:
            dead, decided = _rule_verdicts(rule)
            if dead:
                continue  # the whole rule is the DeadRulePass's W404
            for goal, truth in decided:
                if truth:
                    ctx.emit(
                        "W403",
                        f"condition {goal!r} is always true -- fold it away",
                        _span_of(goal, rule),
                    )
                    emitted = True
            for goal in rule.body:
                if _is_foldable_is(goal):
                    assert isinstance(goal, Struct)
                    ctx.emit(
                        "W403",
                        f"arithmetic {goal.args[1]!r} is constant "
                        f"(= {fold_term(goal.args[1]):g}) -- fold it away",
                        _span_of(goal, rule),
                    )
                    emitted = True
        return emitted


class DeadRulePass(AnalysisPass):
    """W404: rules whose body contains a statically false condition."""

    name = "dead-rule"
    provides = ("pass:dead-rule", "dead_rule_count")

    def run(self, ctx: AnalysisContext) -> bool:
        if "pass:dead-rule" in ctx.facts:
            return False
        ctx.put("pass:dead-rule", True)
        count = 0
        for rule in ctx.program.rules:
            dead, decided = _rule_verdicts(rule)
            if not dead:
                continue
            false_goal = next(g for g, truth in decided if not truth)
            ctx.emit(
                "W404",
                f"rule can never fire: condition {false_goal!r} is always false",
                _span_of(false_goal, rule),
            )
            count += 1
        ctx.put("dead_rule_count", count)
        return count > 0


class ShadowedFactPass(AnalysisPass):
    """W405: in-source facts duplicating a lint-assume pragma family."""

    name = "shadowed-fact"
    provides = ("pass:shadowed-fact",)

    def run(self, ctx: AnalysisContext) -> bool:
        if "pass:shadowed-fact" in ctx.facts:
            return False
        ctx.put("pass:shadowed-fact", True)
        assumed = pragma_assumes(ctx.source)
        if not assumed:
            return False
        emitted = False
        for rule in ctx.program.rules:
            if rule.is_fact and rule.indicator in assumed:
                name, arity = rule.indicator
                ctx.emit(
                    "W405",
                    f"fact {rule.head!r} shadows the pragma-assumed family "
                    f"{name}/{arity} (declared to arrive from outside)",
                    rule.span,
                )
                emitted = True
        return emitted
