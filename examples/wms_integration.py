#!/usr/bin/env python3
"""WMS integration: the paper's Fig. 3 pipeline end to end.

A Montage workflow is written to a Pegasus DAX file, submitted to the
lightweight WMS, planned by the mapper, scheduled by the Deco callout,
executed on the simulated cloud, and tracked through the Condor-style
job queue -- the full integration surface of the paper.

Run:  python examples/wms_integration.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.cloud import ec2_catalog
from repro.engine import Deco
from repro.wms import DecoScheduler, Mapper, PegasusLite, RandomScheduler
from repro.workflow import montage, write_dax


def main() -> None:
    catalog = ec2_catalog()
    workflow = montage(degrees=1, seed=33)

    with tempfile.TemporaryDirectory() as tmp:
        dax_path = Path(tmp) / "montage-1.dax"
        write_dax(workflow, dax_path)
        print(f"Wrote DAX: {dax_path.name} "
              f"({len(dax_path.read_text().splitlines())} lines)")

        mapper = Mapper({"mProjectPP": "/opt/montage/bin/mProjectPP"})
        deco = Deco(catalog, seed=33, num_samples=100, max_evaluations=800)

        print("\nScheduler comparison (same DAX, same cloud dynamics):")
        print(f"{'scheduler':<12} {'makespan':>10} {'billed cost':>12}")
        for scheduler in (
            RandomScheduler(catalog, seed=33),      # Pegasus's default
            DecoScheduler(deco, deadline="medium"),  # the paper's callout
        ):
            wms = PegasusLite(catalog, scheduler, mapper=mapper, seed=33)
            result = wms.submit(dax_path)
            print(f"{scheduler.name:<12} {result.makespan / 3600:8.2f} h "
                  f"${result.cost:10.2f}")

        # Inspect the DAGMan-style event log of the last submission.
        print("\nFirst Condor events of the Deco run:")
        for event in result.events[:6]:
            print(f"  {event!r}")
        done = sum(1 for e in result.events if e.state.value == "done")
        print(f"  ... {done}/{len(workflow)} jobs completed")


if __name__ == "__main__":
    main()
