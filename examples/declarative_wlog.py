#!/usr/bin/env python3
"""The declarative path: write WLog, let the engine do the rest.

This is the paper's Example 1 end to end: the user states the
optimization goal, the probabilistic deadline constraint and the
decision variables *declaratively*; Deco translates the program to the
probabilistic IR, compiles it to arrays, and searches with the
vectorized solver.  The same program is also evaluated through the
reference Prolog interpreter (Algorithm 1) to show both semantics agree.

Run:  python examples/declarative_wlog.py
"""

from __future__ import annotations

from repro.cloud import ec2_catalog
from repro.engine import Deco
from repro.wlog import ImportRegistry, WLogProgram, translate
from repro.wlog.imports import vm_atom
from repro.wlog.library import scheduling_program
from repro.wlog.terms import Atom, Num, Rule, Struct
from repro.workflow import pipeline


def main() -> None:
    catalog = ec2_catalog()
    # A small pipeline so the reference interpreter stays fast.
    workflow = pipeline(num_tasks=4, runtime=600.0, data_mb=2000.0, seed=7)

    registry = ImportRegistry()
    registry.register_cloud("amazonec2", catalog)
    registry.register_workflow("montage", workflow)

    deadline = 4 * 900.0  # seconds
    source = scheduling_program(percentile=95, deadline_seconds=deadline)
    print("WLog program (the paper's Example 1):")
    print(source)

    # --- declarative solve (compiled, vectorized) ------------------------
    deco = Deco(catalog, seed=7, num_samples=200, max_evaluations=500)
    plan = deco.solve_program(source, registry)
    print(f"Deco plan: {plan.type_counts()}  expected cost ${plan.expected_cost:.4f}  "
          f"P(makespan <= D) = {plan.probability:.2f}")

    # --- the same semantics through the reference interpreter ------------
    program = WLogProgram.from_source(source)
    ir = translate(program, registry)
    configs = tuple(
        Rule(Struct("configs", (Atom(tid), vm_atom(plan.assignment[tid]), Num(1.0))))
        for tid in workflow.task_ids
    )
    evaluation = ir.evaluate(configs, max_iter=100, seed=7)
    print(f"\nAlgorithm-1 interpreter check on the same plan: "
          f"goal = ${evaluation.goal_value:.4f}, "
          f"P(constraint) = {evaluation.constraint_probabilities[0]:.2f}, "
          f"feasible = {evaluation.feasible}")

    # --- ad-hoc queries against the translated program -------------------
    from repro.wlog.engine import Engine

    db = ir.deterministic_database(configs)
    engine = Engine(db)
    print("\nAd-hoc WLog queries against the deterministic database:")
    print("  cheapest vm:", min(
        ((s["V"], s["P"].value) for s in engine.query("price(V, P)")),
        key=lambda x: x[1],
    ))
    makespan = engine.first("maxtime(Path, T)")
    print(f"  maxtime(Path, T) -> T = {makespan['T'].value:.0f} s "
          f"(deadline {deadline:.0f} s)")

    assert abs(plan.expected_cost - evaluation.goal_value) / evaluation.goal_value < 0.1
    print("\nOK: compiled and interpreted evaluations agree.")


if __name__ == "__main__":
    main()
