#!/usr/bin/env python3
"""Use case 3: follow-the-cost runtime migration across cloud regions.

A fleet of workflows is deployed across EC2's US East and Singapore
regions (Singapore is ~33% pricier).  Deco's runtime optimizer
periodically re-decides placement -- migrating work toward the cheaper
region when the transfer cost is worth it -- and re-fits instance types
to the remaining slack.  Compared against the threshold-triggered
Heuristic and a never-migrate Static policy (paper Section 6.3.3).

Run:  python examples/follow_the_cost.py
"""

from __future__ import annotations

from repro.cloud import ec2_catalog
from repro.engine import Deco, FollowCostDriver, WorkflowDeployment
from repro.workflow.generators import ligo, montage


def main() -> None:
    catalog = ec2_catalog()
    deco = Deco(catalog, seed=21, num_samples=80, max_evaluations=400)
    driver = FollowCostDriver(catalog, seed=21, period=1800.0,
                              runtime_model=deco.runtime_model)

    # Mixed fleet: CPU-bound Ligo (migration pays: little data to move)
    # and I/O-bound Montage (type re-optimization pays: time doesn't
    # scale with price), half deployed in each region.
    fleet: list[WorkflowDeployment] = []
    regions = catalog.region_names
    for i in range(6):
        wf = (ligo(num_tasks=60, seed=21 + i) if i % 2 == 0
              else montage(degrees=1, seed=21 + i))
        plan = deco.schedule(wf, "medium", deadline_percentile=96.0)
        serial = sum(deco.runtime_model.mean(wf.task(t), plan.assignment[t])
                     for t in wf.task_ids)
        fleet.append(WorkflowDeployment(
            workflow=wf,
            assignment=dict(plan.assignment),
            region=regions[i % len(regions)],
            deadline=serial * 2.0,
        ))
    print(f"Fleet: {len(fleet)} workflows across {list(regions)}\n")

    print(f"{'policy':<12} {'exec $':>8} {'migration $':>12} {'total $':>9} "
          f"{'migrations':>11} {'deadlines met':>14}")
    results = {}
    for policy in ("static", "heuristic", "deco"):
        res = driver.run(fleet, policy=policy, threshold=0.5)
        results[policy] = res
        print(f"{policy:<12} {res.exec_cost:8.3f} {res.migration_cost:12.4f} "
              f"{res.total_cost:9.3f} {res.num_migrations:11d} "
              f"{res.deadlines_met:>9d}/{len(fleet)}")

    assert results["deco"].total_cost <= results["static"].total_cost * 1.02
    print("\nOK: runtime re-optimization (migration + type adaptation) "
          "reduces the fleet's monetary cost.")


if __name__ == "__main__":
    main()
