#!/usr/bin/env python3
"""Use case 2: workflow-ensemble admission under a budget.

Builds a Pareto-sorted ensemble of Montage workflows (a few large,
many small, priorities by size), optimizes each member's plan with
Deco, and runs the A* admission to maximize the ensemble score
``sum(2**-priority)`` under a budget -- compared against the SPSS
baseline (paper Section 6.3.2).

Run:  python examples/ensemble_admission.py
"""

from __future__ import annotations

from repro.baselines.spss import spss_decide
from repro.cloud import ec2_catalog
from repro.engine import Deco, EnsembleDriver
from repro.workflow import make_ensemble
from repro.workflow.ensembles import Ensemble
from repro.workflow.generators import montage


def main() -> None:
    catalog = ec2_catalog()
    deco = Deco(catalog, seed=11, num_samples=100, max_evaluations=500)

    base = make_ensemble("pareto_sorted", montage, num_workflows=8,
                         sizes=(20, 50, 100), seed=11)
    ensemble = base.with_constraints(
        budget=1e18,  # placeholder; set per scenario below
        deadline_for=lambda m: deco.presets(m.workflow).medium,
        deadline_percentile=96.0,
    )
    print(f"Ensemble: {len(ensemble)} Montage workflows "
          f"(sizes {[len(m.workflow) for m in ensemble.by_priority()]}, "
          f"priority 0 first)")

    driver = EnsembleDriver(deco)
    plans = driver.member_plans(ensemble)
    total = sum(p.expected_cost for p in plans.values())
    print(f"Deco per-member plans cost ${total:.3f} in total\n")

    print(f"{'budget':>10} {'deco score':>11} {'spss score':>11} "
          f"{'deco admits':>12} {'spss admits':>12}")
    for frac in (0.25, 0.5, 0.75, 1.0):
        budget = total * frac
        ens = Ensemble(ensemble.name, ensemble.members, budget=budget)
        deco_dec = driver.decide(ens, plans=plans)
        spss_dec = spss_decide(ens, catalog, deco.runtime_model)
        print(f"${budget:9.3f} {deco_dec.total_score:11.3f} "
              f"{spss_dec.planned_score():11.3f} "
              f"{deco_dec.num_admitted:12d} {spss_dec.num_admitted:12d}")
        assert deco_dec.total_cost <= budget + 1e-9

    print("\nOK: Deco admits at least as much score as SPSS at every budget "
          "(cheaper per-member plans fit more workflows).")


if __name__ == "__main__":
    main()
