#!/usr/bin/env python3
"""Quickstart: optimize a Montage workflow's provisioning with Deco.

What this shows:

1. generate a Montage workflow (the paper's astronomy application);
2. ask Deco for the cheapest plan meeting a *probabilistic* deadline
   (P(makespan <= D) >= 96%);
3. compare against the single-type and Autoscaling baselines;
4. execute the plan on the simulated cloud and check the promise held.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines.autoscaling import autoscaling_plan_calibrated
from repro.cloud import CloudSimulator, ec2_catalog
from repro.common.rng import RngService
from repro.engine import Deco
from repro.workflow import montage


def main() -> None:
    catalog = ec2_catalog()
    workflow = montage(degrees=1, seed=42)
    print(f"Workflow: {workflow.name} ({len(workflow)} tasks, {workflow.num_edges()} edges)")

    # --- optimize -------------------------------------------------------
    deco = Deco(catalog, seed=42, num_samples=150, max_evaluations=1500)
    presets = deco.presets(workflow)
    deadline = presets.medium
    print(f"Deadline: {deadline / 3600:.2f} h (medium preset; "
          f"Dmin={presets.dmin / 3600:.2f} h, Dmax={presets.dmax / 3600:.2f} h)")

    plan = deco.schedule(workflow, deadline, deadline_percentile=96.0)
    print(f"\nDeco plan: expected cost ${plan.expected_cost:.4f}, "
          f"P(makespan <= D) = {plan.probability:.2f}, "
          f"solved in {plan.solve_seconds * 1000:.0f} ms "
          f"({plan.overhead_ms_per_task():.1f} ms/task)")
    print(f"Instance mix: {plan.type_counts()}")

    # --- compare --------------------------------------------------------
    as_plan = autoscaling_plan_calibrated(
        workflow, catalog, deadline, 96.0, deco.runtime_model, 150, seed=42
    )
    simulator = CloudSimulator(catalog, RngService(7), deco.runtime_model)
    print("\nMeasured over 20 simulated runs (billed cost / makespan):")
    for name, assignment in [
        ("deco", dict(plan.assignment)),
        ("autoscaling", as_plan),
        ("all m1.small", {t: "m1.small" for t in workflow.task_ids}),
        ("all m1.xlarge", {t: "m1.xlarge" for t in workflow.task_ids}),
    ]:
        results = simulator.run_many(workflow, assignment, 20)
        costs = np.asarray([r.cost for r in results])
        makespans = np.asarray([r.makespan for r in results])
        hit = float(np.mean(makespans <= deadline))
        print(f"  {name:<14} ${costs.mean():6.2f}   {makespans.mean() / 3600:5.2f} h   "
              f"deadline hit rate {hit:.0%}")

    assert plan.feasible, "Deco failed to find a feasible plan"
    print("\nOK: Deco's plan meets the probabilistic deadline at the lowest cost "
          "among deadline-meeting configurations.")


if __name__ == "__main__":
    main()
