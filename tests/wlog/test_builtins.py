"""Tests for the built-in predicates."""

import pytest

from repro.common.errors import WLogRuntimeError
from repro.wlog.engine import Database, Engine
from repro.wlog.parser import parse_program
from repro.wlog.terms import Num


def engine_from(src: str = "") -> Engine:
    return Engine(Database(parse_program(src).rules if src else []))


class TestArithmetic:
    def test_is_evaluates(self):
        e = engine_from()
        assert e.first("X is 2 * 3 + 4")["X"] == Num(10.0)

    def test_is_checks_when_bound(self):
        e = engine_from()
        assert e.ask("6 is 2 * 3")
        assert not e.ask("7 is 2 * 3")

    def test_division_by_zero(self):
        e = engine_from()
        with pytest.raises(WLogRuntimeError):
            e.ask("X is 1 / 0")

    def test_unbound_arithmetic_raises(self):
        e = engine_from()
        with pytest.raises(WLogRuntimeError):
            e.ask("X is Y + 1")

    @pytest.mark.parametrize(
        "query,expected",
        [("1 < 2", True), ("2 < 1", False), ("2 =< 2", True), ("3 >= 4", False),
         ("1 =:= 1.0", True), ("1 =\\= 2", True)],
    )
    def test_comparisons(self, query, expected):
        assert engine_from().ask(query) is expected

    def test_nested_expression_comparison(self):
        assert engine_from().ask("2 * 3 > 5")


class TestUnificationBuiltins:
    def test_explicit_unify(self):
        e = engine_from()
        assert e.first("X = f(1)")["X"].indicator == ("f", 1)

    def test_structural_equality(self):
        e = engine_from()
        assert e.ask("f(1) == f(1)")
        assert not e.ask("f(1) == f(2)")
        assert e.ask("f(1) \\== f(2)")

    def test_numeric_equality_by_value(self):
        # The paper writes Con == 1 where Con is bound to a float.
        e = engine_from("config(1.0).")
        assert e.ask("config(C), C == 1")


class TestNegation:
    def test_naf(self):
        e = engine_from("p(a).")
        assert e.ask("\\+ p(b)")
        assert not e.ask("\\+ p(a)")

    def test_naf_does_not_bind(self):
        e = engine_from("p(a).")
        sol = e.first("\\+ p(b), X = ok")
        assert str(sol["X"]) == "ok"


class TestAggregates:
    SRC = """
item(apple, 3).
item(pear, 5).
item(plum, 2).
"""

    def test_findall(self):
        e = engine_from(self.SRC)
        bag = e.first("findall(N, item(F, N), L)")["L"]
        assert repr(bag) == "[3, 5, 2]"

    def test_findall_empty_gives_nil(self):
        e = engine_from(self.SRC)
        assert repr(e.first("findall(N, item(zz, N), L)")["L"]) == "[]"

    def test_setof_sorted_unique(self):
        e = engine_from(self.SRC + "item(apple2, 3).")
        out = e.first("setof(N, item(F, N), L)")["L"]
        assert repr(out) == "[2, 3, 5]"

    def test_setof_fails_when_empty(self):
        e = engine_from(self.SRC)
        assert not e.ask("setof(N, item(zz, N), L)")

    def test_bagof_fails_when_empty(self):
        e = engine_from(self.SRC)
        assert not e.ask("bagof(N, item(zz, N), L)")

    def test_sum(self):
        e = engine_from(self.SRC)
        assert e.first("findall(N, item(F, N), L), sum(L, S)")["S"] == Num(10.0)

    def test_sum_empty_is_zero(self):
        e = engine_from()
        assert e.first("sum([], S)")["S"] == Num(0.0)

    def test_max_numeric(self):
        e = engine_from()
        assert e.first("max([3, 9, 4], M)")["M"] == Num(9.0)

    def test_min_numeric(self):
        e = engine_from()
        assert e.first("min([3, 9, 4], M)")["M"] == Num(3.0)

    def test_max_pairs_by_last_element(self):
        """The paper's r3: max over [Path, Time] pairs picks the longest."""
        e = engine_from()
        sol = e.first("max([[a, 3], [b, 9], [c, 4]], M)")
        assert repr(sol["M"]) == "[b, 9]"

    def test_max_empty_fails(self):
        assert not engine_from().ask("max([], M)")

    def test_findall_with_conjunction_goal(self):
        e = engine_from(self.SRC)
        out = e.first("findall(N, (item(F, N), N > 2), L)")["L"]
        assert repr(out) == "[3, 5]"


class TestLists:
    def test_member_enumerates(self):
        e = engine_from()
        assert [str(s["X"]) for s in e.query("member(X, [a, b, c])")] == ["a", "b", "c"]

    def test_member_checks(self):
        e = engine_from()
        assert e.ask("member(b, [a, b])")
        assert not e.ask("member(z, [a, b])")

    def test_length(self):
        e = engine_from()
        assert e.first("length([a, b, c], N)")["N"] == Num(3.0)

    def test_length_generative(self):
        e = engine_from()
        lst = e.first("length(L, 2)")["L"]
        from repro.wlog.terms import list_items

        assert len(list_items(lst)) == 2

    def test_append_forward(self):
        e = engine_from()
        assert repr(e.first("append([1, 2], [3], L)")["L"]) == "[1, 2, 3]"

    def test_append_splits(self):
        e = engine_from()
        splits = list(e.query("append(A, B, [1, 2])"))
        assert len(splits) == 3

    def test_nth0(self):
        e = engine_from()
        assert str(e.first("nth0(1, [a, b, c], X)")["X"]) == "b"

    def test_msort(self):
        e = engine_from()
        assert repr(e.first("msort([3, 1, 2], L)")["L"]) == "[1, 2, 3]"

    def test_between(self):
        e = engine_from()
        values = [s["X"] for s in e.query("between(1, 4, X)")]
        assert [v.value for v in values] == [1, 2, 3, 4]


class TestControl:
    def test_true_fail(self):
        e = engine_from()
        assert e.ask("true")
        assert not e.ask("fail")

    def test_call(self):
        e = engine_from("p(a).")
        assert e.ask("X = p(a), call(X)")

    def test_call_unbound_raises(self):
        with pytest.raises(WLogRuntimeError):
            engine_from().ask("call(X)")

    def test_write_captures_output(self):
        e = engine_from()
        e.ask("write(hello), nl")
        assert e.output == ["hello", "\n"]


class TestExtendedListBuiltins:
    def test_reverse(self):
        e = engine_from()
        assert repr(e.first("reverse([1, 2, 3], L)")["L"]) == "[3, 2, 1]"

    def test_reverse_empty(self):
        e = engine_from()
        assert repr(e.first("reverse([], L)")["L"]) == "[]"

    def test_last(self):
        e = engine_from()
        assert str(e.first("last([a, b, c], X)")["X"]) == "c"

    def test_last_empty_fails(self):
        assert not engine_from().ask("last([], X)")

    def test_nth1(self):
        e = engine_from()
        assert str(e.first("nth1(1, [a, b], X)")["X"]) == "a"
        assert str(e.first("nth1(2, [a, b], X)")["X"]) == "b"

    def test_nth1_enumerates(self):
        e = engine_from()
        pairs = [(s["I"].value, str(s["X"])) for s in e.query("nth1(I, [a, b], X)")]
        assert pairs == [(1, "a"), (2, "b")]

    def test_forall_holds(self):
        e = engine_from("p(1). p(2). q(1). q(2).")
        assert e.ask("forall(p(X), q(X))")

    def test_forall_fails_on_counterexample(self):
        e = engine_from("p(1). p(2). q(1).")
        assert not e.ask("forall(p(X), q(X))")

    def test_forall_vacuous(self):
        e = engine_from("q(1).")
        assert e.ask("forall(fail, q(9))")
