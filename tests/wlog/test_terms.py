"""Tests for the WLog term model."""

import pytest

from repro.common.errors import WLogRuntimeError
from repro.wlog.terms import (
    NIL,
    Atom,
    Num,
    Rule,
    Struct,
    Var,
    from_python,
    is_list,
    list_items,
    make_list,
    to_python,
)


class TestTerms:
    def test_struct_equality_and_hash(self):
        a = Struct("f", (Atom("x"), Num(1.0)))
        b = Struct("f", (Atom("x"), Num(1.0)))
        assert a == b and hash(a) == hash(b)

    def test_struct_inequality(self):
        assert Struct("f", (Atom("x"),)) != Struct("g", (Atom("x"),))

    def test_zero_arity_struct_rejected(self):
        with pytest.raises(WLogRuntimeError):
            Struct("f", ())

    def test_indicator(self):
        assert Struct("f", (Atom("a"), Atom("b"))).indicator == ("f", 2)

    def test_repr_list_form(self):
        lst = make_list([Num(1.0), Num(2.0)])
        assert repr(lst) == "[1, 2]"

    def test_repr_improper_list(self):
        lst = make_list([Num(1.0)], tail=Var("T"))
        assert repr(lst) == "[1|T]"

    def test_num_repr_integral(self):
        assert repr(Num(3.0)) == "3"
        assert repr(Num(3.5)) == "3.5"


class TestRules:
    def test_fact(self):
        r = Rule(Struct("f", (Atom("a"),)))
        assert r.is_fact
        assert r.indicator == ("f", 1)

    def test_atom_head(self):
        assert Rule(Atom("go")).indicator == ("go", 0)

    def test_invalid_head_rejected(self):
        with pytest.raises(WLogRuntimeError):
            Rule(Num(1.0))
        with pytest.raises(WLogRuntimeError):
            Rule(Var("X"))


class TestLists:
    def test_roundtrip(self):
        items = [Num(1.0), Atom("x"), Num(3.0)]
        assert list_items(make_list(items)) == items

    def test_nil_is_empty(self):
        assert list_items(NIL) == []
        assert is_list(NIL)

    def test_improper_list_detected(self):
        improper = make_list([Num(1.0)], tail=Var("T"))
        assert not is_list(improper)
        with pytest.raises(WLogRuntimeError):
            list_items(improper)


class TestPythonBridge:
    @pytest.mark.parametrize(
        "value",
        [1, 2.5, "atom", True, False, [1, 2, 3], ["a", [1.0]]],
    )
    def test_roundtrip(self, value):
        assert to_python(from_python(value)) == value

    def test_int_preserved(self):
        assert to_python(from_python(7)) == 7
        assert isinstance(to_python(from_python(7)), int)

    def test_unliftable_rejected(self):
        with pytest.raises(WLogRuntimeError):
            from_python(object())

    def test_unbound_var_not_lowerable(self):
        with pytest.raises(WLogRuntimeError):
            to_python(Var("X"))

    def test_struct_lowered_to_tuple(self):
        s = Struct("f", (Num(1.0), Atom("x")))
        assert to_python(s) == ("f", 1, "x")
