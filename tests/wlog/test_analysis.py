"""Tests for the WLog static analyzer (repro.wlog.analysis)."""

import pytest

from repro.common.errors import WLogAnalysisError
from repro.wlog.analysis import analyze_program, check_program, pragma_assumes
from repro.wlog.diagnostics import CHECKS, Diagnostic, Span, render_diagnostic
from repro.wlog.library import (
    ENSEMBLE_DRIVER_FACTS,
    FOLLOWCOST_DRIVER_FACTS,
    bundled_programs,
    ensemble_program,
    followcost_program,
)
from repro.wlog.parser import parse_program
from repro.wlog.pretty import format_program
from repro.wlog.program import WLogProgram


def checks_of(diags):
    return [d.check for d in diags]


def find(diags, check):
    matches = [d for d in diags if d.check == check]
    assert matches, f"expected a {check} diagnostic, got {checks_of(diags)}"
    return matches[0]


#: A minimal clean scaffold the per-check tests build on.
CLEAN = """
goal minimize C in total(C).
var x(A, Con) forall item(A).
total(C) :- findall(V, value(_A, V), Bag), sum(Bag, C).
value(A, V) :- item(A), weight(A, V).
/* lint: assume item/1, weight/2 */
"""


class TestCleanProgram:
    def test_scaffold_is_clean(self):
        assert analyze_program(CLEAN) == []

    def test_all_bundled_templates_lint_clean(self):
        """Golden assertion: every bundled library template is clean."""
        for name, (source, extra) in bundled_programs().items():
            diags = analyze_program(source, extra_predicates=extra)
            assert diags == [], f"{name}: {[str(d) for d in diags]}"

    def test_driver_fact_constants_are_necessary(self):
        # Without the declared driver facts the templates must NOT be
        # clean -- guards against the constants rotting into no-ops.
        assert any(
            d.check == "E201"
            for d in analyze_program(ensemble_program(budget=10.0))
        )
        assert any(
            d.check == "E201"
            for d in analyze_program(followcost_program(3600.0))
        )
        assert ("wscore", 2) in ENSEMBLE_DRIVER_FACTS
        assert ("wruntime", 3) in FOLLOWCOST_DRIVER_FACTS


class TestUndefinedPredicate:
    def test_typo_in_body_flagged_with_position(self):
        src = CLEAN.replace("weight(A, V)", "wieght(A, V)")
        diag = find(analyze_program(src), "E201")
        assert "wieght/2" in diag.message
        assert "did you mean weight" in diag.message
        assert diag.span is not None and diag.span.line == 5

    def test_typo_in_goal_directive_flagged(self):
        src = CLEAN.replace("goal minimize C in total(C).", "goal minimize C in totl(C).")
        diag = find(analyze_program(src), "E201")
        assert "totl/1" in diag.message

    def test_arity_mismatch_reported_separately(self):
        src = CLEAN.replace("weight(A, V)", "weight(A, V, extra)")
        diags = analyze_program(src)
        diag = find(diags, "E202")
        assert "weight/3" in diag.message and "weight/2" in diag.message
        assert "E201" not in checks_of(diags)

    def test_builtin_wrong_arity_is_arity_mismatch(self):
        src = CLEAN.replace("sum(Bag, C)", "sum(Bag, C, extra)")
        diag = find(analyze_program(src), "E202")
        assert "sum/3" in diag.message

    def test_negated_and_meta_goals_are_walked(self):
        src = CLEAN + "extra :- \\+ missing(_X).\n" + "goalless :- findall(X, absent(X), _L).\n"
        diags = analyze_program(src)
        messages = " ".join(d.message for d in diags if d.check == "E201")
        assert "missing/1" in messages
        assert "absent/1" in messages

    def test_import_facts_assumed_without_registry(self):
        src = """
import(amazonec2).
import(montage).
goal minimize C in total(C).
var x(T, V, Con) forall task(T) and vm(V).
total(C) :- findall(X, tc(_T, X), B), sum(B, C).
tc(T, C) :- task(T), exetime(T, _V, C).
"""
        assert analyze_program(src) == []

    def test_registry_narrows_import_facts(self):
        from repro.cloud import ec2_catalog
        from repro.wlog.imports import ImportRegistry

        registry = ImportRegistry()
        registry.register_cloud("amazonec2", ec2_catalog())
        # Only a cloud is imported: task/1 and exetime/3 are not
        # materialized, so calls to them must be flagged.
        src = """
import(amazonec2).
goal minimize C in total(C).
var x(T, V, Con) forall task(T) and vm(V).
total(C) :- findall(X, tc(_T, X), B), sum(B, C).
tc(T, C) :- task(T), exetime(T, _V, C).
"""
        diags = analyze_program(src, registry=registry)
        flagged = {d.message.split()[2] for d in diags if d.check == "E201"}
        assert "task/1" in flagged and "exetime/3" in flagged


class TestDirectiveSignatures:
    def test_wrong_arity_deadline(self):
        src = CLEAN.replace(
            "goal minimize C in total(C).",
            "goal minimize C in total(C).\ncons T in total(T) satisfies deadline(95%).",
        )
        diag = find(analyze_program(src), "E203")
        assert "deadline/1" in diag.message
        assert diag.span is not None and diag.span.line == 3

    def test_percentile_out_of_domain(self):
        src = CLEAN + "cons T in total(T) satisfies deadline(120.0, 10h).\n"
        assert "E203" in checks_of(analyze_program(src))

    def test_fractional_percentile_warns(self):
        src = CLEAN + "cons T in total(T) satisfies deadline(0.95, 10h).\n"
        diag = find(analyze_program(src), "W306")
        assert "95" in diag.message

    def test_negative_budget(self):
        src = CLEAN + "cons C2 in total(C2) satisfies budget(95%, -5.0).\n"
        diag = find(analyze_program(src), "E203")
        assert "budget" in diag.message

    def test_unknown_requirement_functor(self):
        src = CLEAN + "cons T in total(T) satisfies speedlimit(95%, 10h).\n"
        diag = find(analyze_program(src), "E203")
        assert "speedlimit" in diag.message

    def test_unknown_hint_warns_with_suggestion(self):
        src = CLEAN + "enabled(astr).\n"
        diag = find(analyze_program(src), "W302")
        assert "did you mean astar" in diag.message

    def test_duplicate_goal_directive(self):
        src = CLEAN + "goal minimize D in total(D).\n"
        assert "E208" in checks_of(analyze_program(src))

    def test_detached_goal_objective(self):
        src = CLEAN.replace("goal minimize C in total(C).", "goal minimize D in total(C).")
        diag = find(analyze_program(src), "E209")
        assert "D" in diag.message

    def test_unknown_import_with_registry(self):
        from repro.wlog.imports import ImportRegistry

        src = "import(amazon).\n" + CLEAN
        diag = find(analyze_program(src, registry=ImportRegistry()), "E210")
        assert "amazon" in diag.message

    def test_misspelled_directive_fact(self):
        src = CLEAN + "enabeld(astar).\n"
        diag = find(analyze_program(src), "W307")
        assert "enabled" in diag.message


class TestVariableChecks:
    def test_singleton_flagged(self):
        src = CLEAN.replace("item(A), weight(A, V)", "item(A), weight(A, V), item(Lonely)")
        diag = find(analyze_program(src), "W301")
        assert "Lonely" in diag.message
        assert diag.span is not None and diag.span.line == 5

    def test_underscore_prefix_suppresses_singleton(self):
        src = CLEAN.replace("item(A), weight(A, V)", "item(A), weight(A, V), item(_Lonely)")
        assert analyze_program(src) == []

    def test_unbound_arithmetic(self):
        src = CLEAN + "bad(C) :- C is T + 1.\n/* lint: assume bad/1 */\n"
        diags = analyze_program(src)
        diag = find(diags, "E205")
        assert "T" in diag.message and "is/2" in diag.message

    def test_unbound_comparison(self):
        src = CLEAN.replace("item(A), weight(A, V)", "T > 3, item(A), weight(A, V)")
        assert "E205" in checks_of(analyze_program(src))

    def test_bound_after_call_is_clean(self):
        src = CLEAN.replace(
            "value(A, V) :- item(A), weight(A, V).",
            "value(A, V) :- item(A), weight(A, W), V is W * 2.",
        )
        assert analyze_program(src) == []

    def test_findall_result_becomes_bound(self):
        # Bag flows out of findall into sum/2: no E205 in the scaffold.
        assert analyze_program(CLEAN) == []


class TestNegation:
    def test_free_var_under_negation(self):
        src = CLEAN + "ok :- \\+ value(W, _V).\n/* lint: assume ok/0 */\n"
        diag = find(analyze_program(src), "E206")
        assert "W" in diag.message

    def test_bound_var_under_negation_is_clean(self):
        src = CLEAN + "ok(A) :- item(A), \\+ value(A, _V).\n/* lint: assume ok/1 */\n"
        assert "E206" not in checks_of(analyze_program(src))

    def test_negation_cycle_not_stratified(self):
        src = CLEAN + "p(X) :- item(X), \\+ q(X).\nq(X) :- item(X), \\+ p(X).\n"
        diags = analyze_program(src)
        diag = find(diags, "E207")
        assert "negation" in diag.message

    def test_self_negation(self):
        src = CLEAN + "p :- \\+ p.\n/* lint: assume p/0 */\n"
        assert "E207" in checks_of(analyze_program(src))

    def test_stratified_negation_is_clean(self):
        # The ensemble template's admissible/bad_admission chain is the
        # canonical stratified use; already covered by the golden test,
        # but assert the check specifically here.
        diags = analyze_program(
            ensemble_program(budget=10.0), extra_predicates=ENSEMBLE_DRIVER_FACTS
        )
        assert "E207" not in checks_of(diags)


class TestRuleHygiene:
    def test_duplicate_rule_up_to_renaming(self):
        src = CLEAN + "value(B, W) :- item(B), weight(B, W).\n"
        diag = find(analyze_program(src), "W303")
        assert "value/2" in diag.message
        assert "line 5" in diag.message  # points back at the original

    def test_unreachable_rule(self):
        src = CLEAN + "orphan(X) :- item(X).\n"
        diag = find(analyze_program(src), "W304")
        assert "orphan/1" in diag.message

    def test_astar_score_rules_are_roots(self):
        src = CLEAN + "enabled(astar).\ncal_g_score(C) :- total(C).\nest_h_score(C) :- total(C).\n"
        assert "W304" not in checks_of(analyze_program(src))

    def test_no_goal_no_reachability_check(self):
        src = "f(a).\ng(X) :- f(X).\n"
        assert "W304" not in checks_of(analyze_program(src))

    def test_builtin_shadow(self):
        src = CLEAN + "sum(_A, _B) :- true.\n"
        diag = find(analyze_program(src), "W305")
        assert "sum/2" in diag.message


class TestCheckProgram:
    def test_errors_raise_with_diagnostics(self):
        src = CLEAN.replace("weight(A, V)", "wieght(A, V)")
        with pytest.raises(WLogAnalysisError) as info:
            check_program(src)
        assert info.value.diagnostics
        assert info.value.diagnostics[0].check == "E201"
        assert "wieght" in str(info.value)
        assert "^" in str(info.value)  # caret excerpt in the message

    def test_warnings_pass_and_are_returned(self):
        src = CLEAN + "orphan(X) :- item(X).\n"
        returned = check_program(src)
        assert checks_of(returned) == ["W304"]

    def test_strict_promotes_warnings(self):
        src = CLEAN + "orphan(X) :- item(X).\n"
        with pytest.raises(WLogAnalysisError):
            check_program(src, strict=True)

    def test_clean_program_returns_empty(self):
        assert check_program(CLEAN) == []


class TestInputsAndRendering:
    def test_accepts_parsed_and_wlog_program(self):
        from repro.wlog.program import WLogProgram

        parsed = parse_program(CLEAN)
        assert analyze_program(parsed) == []
        assert analyze_program(WLogProgram.from_source(CLEAN)) == []

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            analyze_program(42)

    def test_pragma_parsing(self):
        assumes = pragma_assumes(
            "/* lint: assume a/1, b/2 */ x. /* lint: assume c/0,\n   d/3 */"
        )
        assert assumes == {("a", 1), ("b", 2), ("c", 0), ("d", 3)}

    def test_render_includes_caret(self):
        diag = Diagnostic("E201", "error", "boom", span=Span(1, 5, 1, 8))
        text = render_diagnostic(diag, "hello world", "f.wlog")
        assert text.splitlines()[0].startswith("f.wlog:1:5: error[E201")
        assert text.splitlines()[-1].strip() == "^^^"

    def test_every_check_is_cataloged(self):
        for check, (name, severity, description) in CHECKS.items():
            assert check[0] in ("E", "W")
            assert (severity == "error") == (check[0] == "E")
            assert name and description

    def test_diagnostics_sorted_by_position(self):
        src = CLEAN + "orphan(X) :- item(X).\np :- \\+ p.\n/* lint: assume p/0 */\n"
        diags = analyze_program(src)
        positions = [(d.span.line, d.span.column) for d in diags if d.span]
        assert positions == sorted(positions)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(bundled_programs()))
    def test_format_parse_relint_fixpoint(self, name):
        """Pretty-printing must not change what the analyzer sees."""
        source, extra = bundled_programs()[name]
        original = analyze_program(source, extra_predicates=extra)
        formatted = format_program(WLogProgram.from_source(source))
        reparsed = analyze_program(
            formatted, extra_predicates=set(extra) | pragma_assumes(source)
        )
        strip = lambda ds: [(d.check, d.message) for d in ds]  # noqa: E731
        assert strip(reparsed) == strip(original)

    def test_round_trip_preserves_findings(self):
        src = (
            "goal minimize C in total(C).\n"
            "var x(A, Con) forall item(A).\n"
            "total(C) :- item(C), item(Lonely).\n"
            "/* lint: assume item/1 */\n"
        )
        original = [(d.check, d.message) for d in analyze_program(src)]
        formatted = format_program(WLogProgram.from_source(src))
        redone = [
            (d.check, d.message)
            for d in analyze_program(formatted, extra_predicates={("item", 1)})
        ]
        assert original == redone
        assert ("W301", "singleton variable Lonely (use _Lonely if intentional)") in redone
