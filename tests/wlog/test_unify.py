"""Tests for unification and the binding trail."""

from repro.wlog.terms import Atom, Num, Struct, Var
from repro.wlog.unify import Bindings, resolve, unify


class TestUnify:
    def test_atoms(self):
        b = Bindings()
        assert unify(Atom("a"), Atom("a"), b)
        assert not unify(Atom("a"), Atom("b"), b)

    def test_numbers(self):
        b = Bindings()
        assert unify(Num(1.0), Num(1.0), b)
        assert not unify(Num(1.0), Num(2.0), b)

    def test_var_binds_to_atom(self):
        b = Bindings()
        x = Var("X")
        assert unify(x, Atom("a"), b)
        assert b.walk(x) == Atom("a")

    def test_var_to_var_aliasing(self):
        b = Bindings()
        x, y = Var("X"), Var("Y")
        assert unify(x, y, b)
        assert unify(y, Atom("a"), b)
        assert b.walk(x) == Atom("a")

    def test_structs_recursive(self):
        b = Bindings()
        lhs = Struct("f", (Var("X"), Atom("b")))
        rhs = Struct("f", (Atom("a"), Var("Y")))
        assert unify(lhs, rhs, b)
        assert b.walk(Var("X")) == Atom("a")
        assert b.walk(Var("Y")) == Atom("b")

    def test_functor_mismatch(self):
        b = Bindings()
        assert not unify(Struct("f", (Atom("a"),)), Struct("g", (Atom("a"),)), b)

    def test_arity_mismatch(self):
        b = Bindings()
        assert not unify(Struct("f", (Atom("a"),)), Struct("f", (Atom("a"), Atom("b"))), b)

    def test_repeated_variable_consistency(self):
        b = Bindings()
        lhs = Struct("f", (Var("X"), Var("X")))
        assert not unify(lhs, Struct("f", (Atom("a"), Atom("b"))), b)
        assert unify(lhs, Struct("f", (Atom("c"), Atom("c"))), Bindings())


class TestTrail:
    def test_failed_unify_restores_bindings(self):
        b = Bindings()
        x = Var("X")
        # Partial match binds X before the mismatch is found.
        lhs = Struct("f", (x, Atom("b")))
        rhs = Struct("f", (Atom("a"), Atom("c")))
        assert not unify(lhs, rhs, b)
        assert b.walk(x) is x  # unbound again
        assert len(b) == 0

    def test_mark_undo(self):
        b = Bindings()
        unify(Var("X"), Atom("a"), b)
        mark = b.mark()
        unify(Var("Y"), Atom("b"), b)
        b.undo(mark)
        assert b.walk(Var("Y")) == Var("Y")
        assert b.walk(Var("X")) == Atom("a")


class TestResolve:
    def test_deep_substitution(self):
        b = Bindings()
        unify(Var("X"), Atom("a"), b)
        term = Struct("f", (Struct("g", (Var("X"),)), Var("Y")))
        resolved = resolve(term, b)
        assert resolved == Struct("f", (Struct("g", (Atom("a"),)), Var("Y")))

    def test_resolve_shares_unchanged_terms(self):
        b = Bindings()
        term = Struct("f", (Atom("a"),))
        assert resolve(term, b) is term
