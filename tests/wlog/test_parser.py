"""Tests for the WLog parser."""

import pytest

from repro.common.errors import WLogSyntaxError
from repro.wlog.parser import parse_program, parse_query, parse_term
from repro.wlog.program import ConsSpec, GoalSpec, VarSpec
from repro.wlog.terms import Atom, Num, Struct, Var


class TestTerms:
    def test_compound(self):
        t = parse_term("cost(Tid, Vid, C)")
        assert isinstance(t, Struct)
        assert t.indicator == ("cost", 3)
        assert t.args[0] == Var("Tid")

    def test_nested(self):
        t = parse_term("f(g(X), 3)")
        assert t.args[0].indicator == ("g", 1)

    def test_arithmetic_precedence(self):
        t = parse_term("C is T * Up + B")
        assert t.functor == "is"
        rhs = t.args[1]
        assert rhs.functor == "+"
        assert rhs.args[0].functor == "*"

    def test_division(self):
        t = parse_term("C is T * Up / 3600")
        rhs = t.args[1]
        assert rhs.functor == "/"

    def test_parenthesized_arithmetic(self):
        t = parse_term("C is (A + B) * 2")
        assert t.args[1].functor == "*"
        assert t.args[1].args[0].functor == "+"

    def test_negative_number(self):
        assert parse_term("-4") == Num(-4.0)

    def test_unary_minus_on_var(self):
        t = parse_term("0 - X")
        assert t.functor == "-"

    def test_lists(self):
        t = parse_term("[Z, T1]")
        assert repr(t) == "[Z, T1]"

    def test_list_with_tail(self):
        t = parse_term("[H|T]")
        assert t.functor == "."
        assert t.args[1] == Var("T")

    def test_comparisons(self):
        assert parse_term("Con == 1").functor == "=="
        assert parse_term("Z \\== Y").functor == "\\=="
        assert parse_term("A =< B").functor == "=<"

    def test_negation(self):
        t = parse_term("\\+ bad(X)")
        assert t.functor == "\\+"

    def test_cut(self):
        assert parse_term("!") == Atom("!")

    def test_anonymous_vars_distinct(self):
        t = parse_query("f(_, _)")[0]
        assert t.args[0] != t.args[1]

    def test_parenthesized_conjunction(self):
        t = parse_term("(a(X), b(X), c(X))")
        assert t.functor == ","
        assert t.args[1].functor == ","

    def test_trailing_junk_rejected(self):
        with pytest.raises(WLogSyntaxError):
            parse_term("f(X) g")


class TestRules:
    def test_fact(self):
        p = parse_program("edge(a, b).")
        assert len(p.rules) == 1
        assert p.rules[0].is_fact

    def test_rule_with_body(self):
        p = parse_program("anc(X, Y) :- parent(X, Z), anc(Z, Y).")
        assert len(p.rules[0].body) == 2

    def test_paper_cost_rule(self):
        src = (
            "cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T), "
            "configs(Tid,Vid,Con), C is T*Up*Con."
        )
        rule = parse_program(src).rules[0]
        assert rule.indicator == ("cost", 3)
        assert rule.body[-1].functor == "is"

    def test_missing_period_rejected(self):
        with pytest.raises(WLogSyntaxError):
            parse_program("f(a)")


class TestDirectives:
    def test_import(self):
        p = parse_program("import(amazonec2).")
        assert p.directives[0].kind == "import"
        assert p.directives[0].payload == "amazonec2"

    def test_enabled(self):
        p = parse_program("enabled(astar).")
        assert p.directives[0].payload == "astar"

    def test_goal_minimize(self):
        p = parse_program("goal minimize Ct in totalcost(Ct).")
        spec = p.directives[0].payload
        assert isinstance(spec, GoalSpec)
        assert spec.mode == "minimize"
        assert spec.objective == Var("Ct")
        assert spec.predicate.indicator == ("totalcost", 1)

    def test_goal_maximize(self):
        p = parse_program("goal maximize S in score(S).")
        assert p.directives[0].payload.mode == "maximize"

    def test_goal_requires_mode(self):
        with pytest.raises(WLogSyntaxError):
            parse_program("goal Ct in totalcost(Ct).")

    def test_cons_with_requirement(self):
        p = parse_program("cons T in maxtime(Path, T) satisfies deadline(95%, 10h).")
        spec = p.directives[0].payload
        assert isinstance(spec, ConsSpec)
        assert spec.variable == Var("T")
        assert spec.requirement_kind() == "deadline"
        assert spec.requirement.args == (Num(95.0), Num(36000.0))

    def test_cons_boolean(self):
        p = parse_program("cons admissible.")
        spec = p.directives[0].payload
        assert spec.variable is None
        assert spec.requirement is None

    def test_var_directive(self):
        p = parse_program("var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).")
        spec = p.directives[0].payload
        assert isinstance(spec, VarSpec)
        assert spec.declaration.indicator == ("configs", 3)
        assert len(spec.domains) == 2

    def test_var_as_predicate_name_still_works(self):
        # A predicate literally called var/1 must not trigger the directive.
        p = parse_program("var(x).")
        assert len(p.rules) == 1
        assert not p.directives


class TestQueries:
    def test_conjunction(self):
        goals = parse_query("f(X), g(X), h(X)")
        assert len(goals) == 3

    def test_single(self):
        assert len(parse_query("f(X)")) == 1


class TestSyntaxErrorRendering:
    def test_error_carries_position_and_excerpt(self):
        with pytest.raises(WLogSyntaxError) as info:
            parse_program("f(a) g.\n")
        err = info.value
        assert (err.line, err.column) == (1, 6)
        assert err.base_message == "expected 'END', found 'g'"
        text = str(err)
        assert "(line 1, column 6)" in text
        assert "f(a) g." in text
        # The caret sits under the offending token.
        excerpt_lines = text.splitlines()
        assert excerpt_lines[-1].index("^") == excerpt_lines[-2].index("g")

    def test_error_on_later_line(self):
        with pytest.raises(WLogSyntaxError) as info:
            parse_program("f(a).\ng(X) :- , h(X).\n")
        err = info.value
        assert err.line == 2
        assert "g(X) :- , h(X)." in str(err)
        assert "^" in str(err)

    def test_lexer_error_renders_excerpt_too(self):
        with pytest.raises(WLogSyntaxError) as info:
            parse_program("f(a) @ g.\n")
        assert "^" in str(info.value)
        assert info.value.line == 1

    def test_base_message_is_unadorned(self):
        with pytest.raises(WLogSyntaxError) as info:
            parse_program("goal Ct in totalcost(Ct).")
        assert "line" not in info.value.base_message


class TestSpans:
    def test_rule_and_directive_spans(self):
        p = parse_program("f(a).\ngoal minimize C in total(C).\n")
        assert p.rules[0].span.line == 1
        assert p.rules[0].span.column == 1
        assert p.directives[0].span.line == 2

    def test_goal_term_spans(self):
        p = parse_program("f(X) :- g(X), X > 2.\n")
        body = p.rules[0].body
        assert body[0].span.line == 1
        assert body[0].span.column == 9
        assert body[1].span.column == 17  # the '>' token

    def test_spans_do_not_affect_equality(self):
        a = parse_term("f(X, atom)")
        b = Struct("f", (Var("X"), Atom("atom")))
        assert a == b
        assert hash(a.args[1]) == hash(b.args[1])
