"""Tests for SLD resolution (the WLog interpreter core)."""

import pytest

from repro.common.errors import WLogRuntimeError
from repro.wlog.engine import Database, Engine
from repro.wlog.parser import parse_program
from repro.wlog.terms import Atom, Num


def engine_from(src: str) -> Engine:
    return Engine(Database(parse_program(src).rules))


FAMILY = """
parent(a, b).  parent(a, c).  parent(b, d).  parent(c, e).
anc(X, Y) :- parent(X, Y).
anc(X, Y) :- parent(X, Z), anc(Z, Y).
sibling(X, Y) :- parent(P, X), parent(P, Y), X \\== Y.
"""


class TestResolution:
    def test_facts(self):
        e = engine_from(FAMILY)
        assert e.ask("parent(a, b)")
        assert not e.ask("parent(b, a)")

    def test_variable_answers(self):
        e = engine_from(FAMILY)
        children = sorted(str(s["X"]) for s in e.query("parent(a, X)"))
        assert children == ["b", "c"]

    def test_recursion(self):
        e = engine_from(FAMILY)
        descendants = sorted(str(s["Y"]) for s in e.query("anc(a, Y)"))
        assert descendants == ["b", "c", "d", "e"]

    def test_conjunction(self):
        e = engine_from(FAMILY)
        sols = list(e.query("parent(a, X), parent(X, Y)"))
        assert {(str(s["X"]), str(s["Y"])) for s in sols} == {("b", "d"), ("c", "e")}

    def test_joins_with_inequality(self):
        e = engine_from(FAMILY)
        sibs = {(str(s["X"]), str(s["Y"])) for s in e.query("sibling(X, Y)")}
        assert sibs == {("b", "c"), ("c", "b")}

    def test_first_and_all_values(self):
        e = engine_from(FAMILY)
        assert e.first("parent(zz, X)") is None
        assert len(e.all_values("parent(a, X)", "X")) == 2

    def test_unknown_predicate_raises(self):
        e = engine_from(FAMILY)
        with pytest.raises(WLogRuntimeError):
            e.ask("grandparent(a, X)")

    def test_ground_query_no_bindings(self):
        e = engine_from(FAMILY)
        sols = list(e.query("parent(a, b)"))
        assert sols == [{}]


class TestCut:
    def test_cut_commits_to_first_solution(self):
        e = engine_from(FAMILY + "first(X, Y) :- parent(X, Y), !.")
        assert [str(s["Y"]) for s in e.query("first(a, Y)")] == ["b"]

    def test_cut_local_to_clause(self):
        src = FAMILY + """
pick(X) :- parent(a, X), !.
pick(zzz).
"""
        e = engine_from(src)
        # Cut prunes the second pick/1 clause too (clause alternatives).
        assert [str(s["X"]) for s in e.query("pick(X)")] == ["b"]

    def test_cut_does_not_leak_upward(self):
        src = FAMILY + """
inner(X) :- parent(a, X), !.
outer(X, Y) :- parent(a, X), inner(Y).
"""
        e = engine_from(src)
        # The cut inside inner/1 must not prune outer's choices for X.
        xs = sorted({str(s["X"]) for s in e.query("outer(X, Y)")})
        assert xs == ["b", "c"]


class TestRenaming:
    def test_clause_variables_fresh_per_activation(self):
        src = "double(X, Y) :- Y is X + X.\nquad(X, Z) :- double(X, Y), double(Y, Z)."
        e = engine_from(src)
        assert e.first("quad(3, Z)")["Z"] == Num(12.0)

    def test_depth_limit(self):
        e = engine_from("loop(X) :- loop(X).")
        e.max_depth = 50
        with pytest.raises(WLogRuntimeError):
            e.ask("loop(1)")


class TestDatabase:
    def test_add_fact_lifts_python_values(self):
        db = Database()
        db.add_fact("price", "vm0", 0.044)
        e = Engine(db)
        assert e.first("price(vm0, P)")["P"] == Num(0.044)

    def test_first_argument_indexing(self):
        db = Database()
        for i in range(100):
            db.add_fact("exetime", f"t{i}", "vm0", float(i))
        clauses = db.clauses(("exetime", 3), Atom("t5"))
        assert len(clauses) == 1

    def test_index_falls_back_for_rules(self):
        src = "p(a).\np(X) :- q(X).\nq(b)."
        db = Database(parse_program(src).rules)
        assert len(db.clauses(("p", 1), Atom("a"))) == 2  # no index: mixed predicate

    def test_clone_isolated(self):
        db = Database()
        db.add_fact("f", "a")
        clone = db.clone()
        clone.add_fact("f", "b")
        assert len(db.clauses(("f", 1))) == 1
        assert len(clone.clauses(("f", 1))) == 2

    def test_index_invalidated_on_add(self):
        db = Database()
        db.add_fact("f", "a", 1.0)
        db.clauses(("f", 2), Atom("a"))  # build index
        db.add_fact("f", "a", 2.0)
        assert len(db.clauses(("f", 2), Atom("a"))) == 2


class TestCallOnTerms:
    def test_query_accepts_parsed_terms(self):
        from repro.wlog.parser import parse_query

        e = engine_from(FAMILY)
        goals = parse_query("parent(a, X)")
        assert len(list(e.query(goals))) == 2

    def test_calling_number_raises(self):
        e = engine_from(FAMILY)
        with pytest.raises(WLogRuntimeError):
            list(e.query([Num(1.0)]))
