"""Tests for WLogProgram classification and validation."""

import pytest

from repro.common.errors import WLogError
from repro.wlog.library import ensemble_program, followcost_program, scheduling_program
from repro.wlog.program import WLogProgram


class TestExample1:
    def test_classification(self):
        prog = WLogProgram.from_source(scheduling_program(percentile=95, deadline_seconds=36000))
        assert prog.imports == ("amazonec2", "montage")
        assert prog.goal is not None and prog.goal.mode == "minimize"
        assert len(prog.constraints) == 1
        assert prog.constraints[0].requirement_kind() == "deadline"
        assert prog.var_spec is not None
        assert prog.var_spec.declaration.indicator == ("configs", 3)
        assert len(prog.var_spec.domains) == 2

    def test_rules_present(self):
        prog = WLogProgram.from_source(scheduling_program())
        indicators = {r.indicator for r in prog.rules}
        assert ("path", 4) in indicators
        assert ("maxtime", 2) in indicators
        assert ("cost", 3) in indicators
        assert ("totalcost", 1) in indicators

    def test_validate_for_solving(self):
        WLogProgram.from_source(scheduling_program()).validate_for_solving()

    def test_astar_variant(self):
        prog = WLogProgram.from_source(scheduling_program(astar=True))
        assert prog.astar_enabled
        assert prog.has_g_score and prog.has_h_score
        prog.validate_for_solving()

    def test_astar_without_scores_rejected(self):
        src = scheduling_program() + "\nenabled(astar).\n"
        prog = WLogProgram.from_source(src)
        with pytest.raises(WLogError):
            prog.validate_for_solving()


class TestOtherUseCases:
    def test_ensemble_program(self):
        prog = WLogProgram.from_source(ensemble_program(budget=10.0))
        assert prog.goal.mode == "maximize"
        kinds = [c.requirement_kind() for c in prog.constraints]
        assert "budget" in kinds
        assert None in kinds  # the boolean 'admissible' constraint
        assert prog.astar_enabled

    def test_followcost_program(self):
        prog = WLogProgram.from_source(followcost_program(deadline_seconds=3600.0))
        assert prog.goal.mode == "minimize"
        assert prog.var_spec.declaration.indicator == ("wregion", 3)


class TestValidation:
    def test_two_goals_rejected(self):
        src = "goal minimize A in f(A).\ngoal minimize B in g(B).\n"
        with pytest.raises(WLogError):
            WLogProgram.from_source(src)

    def test_two_var_specs_rejected(self):
        src = "var x(A) forall t(A).\nvar y(B) forall t(B).\n"
        with pytest.raises(WLogError):
            WLogProgram.from_source(src)

    def test_no_goal_rejected_for_solving(self):
        prog = WLogProgram.from_source("f(a).")
        with pytest.raises(WLogError):
            prog.validate_for_solving()

    def test_no_vars_rejected_for_solving(self):
        prog = WLogProgram.from_source("goal minimize A in f(A).")
        with pytest.raises(WLogError):
            prog.validate_for_solving()
