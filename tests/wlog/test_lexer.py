"""Tests for the WLog tokenizer."""

import pytest

from repro.common.errors import WLogSyntaxError
from repro.wlog.lexer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]  # drop EOF


class TestBasics:
    def test_atoms_and_vars(self):
        assert kinds("foo Bar _baz") == [("ATOM", "foo"), ("VAR", "Bar"), ("VAR", "_baz")]

    def test_numbers(self):
        assert kinds("42 3.14") == [("NUM", 42.0), ("NUM", 3.14)]

    def test_quoted_atoms(self):
        assert kinds("'m1.small'") == [("ATOM", "m1.small")]

    def test_quoted_escapes(self):
        assert kinds(r"'a\'b'") == [("ATOM", "a'b")]

    def test_punctuation(self):
        values = [v for _, v in kinds("f(X, Y) :- g(X).")]
        assert values == ["f", "(", "X", ",", "Y", ")", ":-", "g", "(", "X", ")", "."]

    def test_operators(self):
        assert [v for _, v in kinds("X =< Y")] == ["X", "=<", "Y"]
        assert [v for _, v in kinds("X \\== Y")] == ["X", "\\==", "Y"]
        assert [v for _, v in kinds("X =\\= Y")] == ["X", "=\\=", "Y"]

    def test_clause_terminator_vs_decimal(self):
        toks = kinds("x(1.5).")
        assert toks == [("ATOM", "x"), ("PUNCT", "("), ("NUM", 1.5), ("PUNCT", ")"), ("END", ".")]


class TestWLogLiterals:
    def test_percent_literal(self):
        assert kinds("95%") == [("PERCENT", 95.0)]

    def test_fractional_percent(self):
        assert kinds("99.9%") == [("PERCENT", 99.9)]

    def test_duration_hours(self):
        assert kinds("10h") == [("NUM", 36000.0)]

    def test_duration_minutes_seconds_days(self):
        assert kinds("2m 45s 1d") == [("NUM", 120.0), ("NUM", 45.0), ("NUM", 86400.0)]

    def test_unit_requires_word_boundary(self):
        # '10hz' is a number followed by the atom 'hz', not 10 hours.
        assert kinds("10hz") == [("NUM", 10.0), ("ATOM", "hz")]

    def test_deadline_call(self):
        toks = kinds("deadline(95%, 10h)")
        assert ("PERCENT", 95.0) in toks
        assert ("NUM", 36000.0) in toks


class TestComments:
    def test_block_comment_skipped(self):
        assert kinds("a /* hidden */ b") == [("ATOM", "a"), ("ATOM", "b")]

    def test_multiline_comment_tracks_lines(self):
        toks = tokenize("/* one\ntwo */ x")
        assert toks[0].line == 2

    def test_unterminated_comment(self):
        with pytest.raises(WLogSyntaxError):
            tokenize("a /* never closed")


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(WLogSyntaxError) as exc:
            tokenize("a @ b")
        assert "@" in str(exc.value)

    def test_unterminated_quote(self):
        with pytest.raises(WLogSyntaxError):
            tokenize("'oops")

    def test_position_reported(self):
        with pytest.raises(WLogSyntaxError) as exc:
            tokenize("abc\n  @")
        assert exc.value.line == 2
        assert exc.value.column == 3

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "EOF"
