"""Tests for the import registry (workflow/cloud fact materialization)."""

import pytest

from repro.common.errors import WLogRuntimeError
from repro.wlog.engine import Database, Engine
from repro.wlog.imports import ImportRegistry, vm_atom
from repro.wlog.terms import Atom
from repro.workflow.generators import pipeline


@pytest.fixture()
def registry(catalog):
    reg = ImportRegistry()
    reg.register_cloud("amazonec2", catalog)
    reg.register_workflow("pipe", pipeline(3, seed=0))
    return reg


class TestVmAtom:
    def test_sanitizes_dots(self):
        assert vm_atom("m1.small") == Atom("m1_small")


class TestMaterialize:
    def test_workflow_facts(self, registry):
        mat = registry.materialize(("pipe",))
        e = Engine(Database(mat.rules))
        assert len(list(e.query("task(T)"))) == 3
        # root/tail virtual edges present.
        assert e.ask("edge(root, X)")
        assert e.ask("edge(X, tail)")

    def test_cloud_facts(self, registry, catalog):
        mat = registry.materialize(("amazonec2",))
        e = Engine(Database(mat.rules))
        vms = [str(s["V"]) for s in e.query("vm(V)")]
        assert len(vms) == len(catalog)
        sol = e.first("price(m1_small, P)")
        assert sol["P"].value == pytest.approx(0.044)
        assert e.ask("cpu_speed(m1_xlarge, 8)")

    def test_region_facts(self, registry):
        mat = registry.materialize(("amazonec2",))
        e = Engine(Database(mat.rules))
        regions = {str(s["R"]) for s in e.query("region(R)")}
        assert regions == {"us_east_1", "ap_southeast_1"}
        assert e.ask("netprice(us_east_1, ap_southeast_1, K)")
        assert e.ask("bandwidth(us_east_1, ap_southeast_1, B)")

    def test_exetime_prob_facts_need_both_imports(self, registry, catalog):
        only_wf = registry.materialize(("pipe",))
        assert not only_wf.prob_facts
        both = registry.materialize(("amazonec2", "pipe"))
        assert len(both.prob_facts) == 3 * len(catalog)

    def test_exetime_histogram_means_sane(self, registry, runtime_model):
        mat = registry.materialize(("amazonec2", "pipe"))
        wf = mat.workflows["pipe"]
        for fact in mat.prob_facts:
            tid = fact.key[0].name
            assert fact.histogram.mean() > 0
            # Deterministic collapse matches the runtime model's mean.
            type_name = fact.key[1].name.replace("_", ".", 1).replace("_", ".")
            assert fact.mean_rule().head.args[-1].value == pytest.approx(
                fact.histogram.mean()
            )

    def test_root_exetime_zero(self, registry):
        mat = registry.materialize(("amazonec2", "pipe"))
        e = Engine(Database(mat.rules))
        assert e.ask("exetime(root, m1_small, 0)")
        assert e.ask("configs(root, m1_small, 1)")

    def test_unknown_import_rejected(self, registry):
        with pytest.raises(WLogRuntimeError):
            registry.materialize(("nonexistent",))

    def test_two_clouds_rejected(self, registry, catalog):
        registry.register_cloud("othercloud", catalog)
        with pytest.raises(WLogRuntimeError):
            registry.materialize(("amazonec2", "othercloud"))
