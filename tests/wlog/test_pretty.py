"""Tests for the WLog pretty-printer (round-trips with the parser)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wlog.library import ensemble_program, followcost_program, scheduling_program
from repro.wlog.parser import parse_program, parse_term
from repro.wlog.pretty import format_program, format_rule, format_term
from repro.wlog.program import WLogProgram
from repro.wlog.terms import Atom, Num, Struct, Var, make_list


class TestFormatTerm:
    @pytest.mark.parametrize(
        "text",
        [
            "foo",
            "Bar",
            "f(a, B, 3)",
            "[1, 2, 3]",
            "[]",
            "cost(Tid, Vid, C)",
            "f(g(h(X)))",
        ],
    )
    def test_roundtrip_simple(self, text):
        term = parse_term(text)
        assert parse_term(format_term(term)) == term

    def test_infix_arithmetic_roundtrips(self):
        term = parse_term("C is T * Up + B / 2")
        assert parse_term(format_term(term)) == term

    def test_comparison_roundtrips(self):
        for text in ("X == 1", "Z \\== Y", "A =< B", "A =:= B"):
            term = parse_term(text)
            assert parse_term(format_term(term)) == term

    def test_negation_roundtrips(self):
        term = parse_term("\\+ bad(X)")
        assert parse_term(format_term(term)) == term

    def test_quoted_atom(self):
        term = Atom("m1.small")
        assert format_term(term) == "'m1.small'"
        assert parse_term(format_term(term)) == term

    def test_improper_list(self):
        term = make_list([Num(1.0)], tail=Var("T"))
        assert parse_term(format_term(term)) == term

    def test_floats(self):
        assert format_term(Num(2.5)) == "2.5"
        assert format_term(Num(3.0)) == "3"

    def test_conjunction(self):
        term = parse_term("(a(X), b(X))")
        assert parse_term(format_term(term)) == term


class TestFormatRule:
    def test_fact(self):
        rule = parse_program("edge(a, b).").rules[0]
        assert format_rule(rule) == "edge(a, b)."

    def test_rule_roundtrip(self):
        src = "cost(T, V, C) :- price(V, U), exetime(T, V, X), C is ((X * U) / 3600)."
        rule = parse_program(src).rules[0]
        back = parse_program(format_rule(rule)).rules[0]
        assert back == rule


class TestFormatProgram:
    @pytest.mark.parametrize(
        "source",
        [
            scheduling_program(percentile=95, deadline_seconds=36000),
            scheduling_program(astar=True),
            ensemble_program(budget=12.5),
            followcost_program(deadline_seconds=7200.0),
        ],
    )
    def test_library_programs_roundtrip(self, source):
        program = WLogProgram.from_source(source)
        text = format_program(program)
        back = WLogProgram.from_source(text)
        assert back.imports == program.imports
        assert back.enabled == program.enabled
        assert (back.goal is None) == (program.goal is None)
        if program.goal:
            assert back.goal.mode == program.goal.mode
            assert back.goal.predicate == program.goal.predicate
        assert len(back.constraints) == len(program.constraints)
        assert len(back.rules) == len(program.rules)
        for a, b in zip(back.rules, program.rules):
            assert a.indicator == b.indicator


atoms = st.sampled_from(["a", "bc", "m1_small", "task_01"])
variables = st.sampled_from(["X", "Y", "Tid", "Vid"])
numbers = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False).map(lambda x: round(x, 4))


@st.composite
def terms(draw, depth=2):
    if depth == 0:
        kind = draw(st.integers(0, 2))
        if kind == 0:
            return Atom(draw(atoms))
        if kind == 1:
            return Var(draw(variables))
        return Num(draw(numbers))
    kind = draw(st.integers(0, 4))
    if kind <= 2:
        return draw(terms(depth=0))
    if kind == 3:
        n = draw(st.integers(1, 3))
        args = tuple(draw(terms(depth=depth - 1)) for _ in range(n))
        return Struct(draw(atoms), args)
    items = [draw(terms(depth=depth - 1)) for _ in range(draw(st.integers(0, 3)))]
    return make_list(items)


@given(terms())
@settings(max_examples=100)
def test_property_format_parse_roundtrip(term):
    assert parse_term(format_term(term)) == term
