"""The declarative fault surface: fault_model directive + reliability cons."""

import pytest

from repro.common.errors import ValidationError, WLogError
from repro.wlog.analysis import analyze_program
from repro.wlog.library import scheduling_program
from repro.wlog.parser import parse_program
from repro.wlog.pretty import format_program
from repro.wlog.program import FaultSpec, WLogProgram

FAULTY = scheduling_program(
    failure_rate=0.05,
    mtbf_seconds=36_000.0,
    reliability_percentile=99.0,
    max_retries=3,
)


def checks_of(diags):
    return [d.check for d in diags]


class TestParsing:
    def test_fault_model_classified(self):
        prog = WLogProgram.from_source(FAULTY)
        assert prog.fault_spec == FaultSpec(rate=0.05, mtbf=36_000.0)

    def test_to_fault_model(self):
        fm = FaultSpec(rate=0.05, mtbf=36_000.0).to_fault_model()
        assert fm.task_failure_rate == 0.05
        assert fm.instance_mtbf == 36_000.0

    def test_plain_program_has_no_fault_spec(self):
        assert WLogProgram.from_source(scheduling_program()).fault_spec is None

    def test_duplicate_fault_model_rejected(self):
        src = FAULTY + "\nfault_model(0.1, 500.0).\n"
        with pytest.raises(WLogError, match="more than one fault_model"):
            WLogProgram.from_source(src)

    def test_directives_survive_parse(self):
        parsed = parse_program(FAULTY)
        kinds = [d.kind for d in parsed.directives]
        assert kinds.count("fault_model") == 1


class TestAnalyzer:
    def test_faulty_template_lints_clean(self):
        assert analyze_program(FAULTY) == []

    def test_bad_rate_flagged_e211(self):
        src = FAULTY.replace("fault_model(0.05,", "fault_model(1.5,")
        assert "E211" in checks_of(analyze_program(src))

    def test_bad_mtbf_flagged_e211(self):
        src = FAULTY.replace("36000.0", "0.0")
        assert "E211" in checks_of(analyze_program(src))

    def test_reliability_without_fault_model_flagged_e211(self):
        src = "\n".join(
            l for l in FAULTY.splitlines() if not l.startswith("fault_model")
        )
        diags = analyze_program(src)
        assert "E211" in checks_of(diags)
        # successprob/1 is only synthesized under a fault model.
        assert "E201" in checks_of(diags)

    def test_non_integer_retry_budget_flagged_e203(self):
        src = FAULTY.replace("reliability(99%, 3)", "reliability(99%, 2.5)")
        assert "E203" in checks_of(analyze_program(src))


class TestPrettyRoundTrip:
    def test_format_preserves_fault_model(self):
        prog = WLogProgram.from_source(FAULTY)
        text = format_program(prog)
        assert "fault_model(0.05, 36000)." in text
        assert WLogProgram.from_source(text).fault_spec == prog.fault_spec

    def test_infinite_mtbf_renders_parseable(self):
        prog = WLogProgram.from_source(FAULTY.replace("36000.0", "999999999.0"))
        reparsed = WLogProgram.from_source(format_program(prog))
        assert reparsed.fault_spec == prog.fault_spec


class TestLibraryValidation:
    def test_reliability_requires_failure_rate(self):
        with pytest.raises(ValidationError, match="failure_rate"):
            scheduling_program(reliability_percentile=99.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(failure_rate=1.0),
            dict(failure_rate=-0.1),
            dict(failure_rate=0.1, mtbf_seconds=0.0),
            dict(failure_rate=0.1, reliability_percentile=0.0),
            dict(failure_rate=0.1, reliability_percentile=101.0),
            dict(failure_rate=0.1, reliability_percentile=99.0, max_retries=-1),
        ],
    )
    def test_bad_fault_arguments_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            scheduling_program(**kwargs)
