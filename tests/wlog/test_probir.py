"""Tests for the probabilistic IR and Monte Carlo evaluation (Algorithm 1)."""

import pytest

from repro.common.errors import WLogError
from repro.wlog.imports import ImportRegistry, vm_atom
from repro.wlog.library import scheduling_program
from repro.wlog.probir import translate
from repro.wlog.program import WLogProgram
from repro.wlog.terms import Atom, Num, Rule, Struct
from repro.workflow.generators import pipeline


@pytest.fixture()
def setup(catalog):
    wf = pipeline(num_tasks=3, runtime=600.0, data_mb=2000.0, seed=1)
    reg = ImportRegistry()
    reg.register_cloud("amazonec2", catalog)
    reg.register_workflow("montage", wf)
    return wf, reg


def configs_rules(wf, type_name):
    return tuple(
        Rule(Struct("configs", (Atom(tid), vm_atom(type_name), Num(1.0))))
        for tid in wf.task_ids
    )


class TestTranslate:
    def test_prob_facts_generated(self, setup, catalog):
        wf, reg = setup
        ir = translate(WLogProgram.from_source(scheduling_program()), reg)
        assert len(ir.prob_facts) == len(wf) * len(catalog)

    def test_deterministic_mode_flag(self, setup):
        wf, reg = setup
        ir = translate(WLogProgram.from_source(scheduling_program()), reg, deterministic=True)
        assert ir.deterministic


class TestEvaluation:
    def test_goal_value_matches_eq1(self, setup, catalog, runtime_model):
        """Deterministic evaluation must equal the hand-computed Eq. 1 cost."""
        wf, reg = setup
        src = scheduling_program(percentile=90, deadline_seconds=1e9)
        ir = translate(WLogProgram.from_source(src), reg, deterministic=True)
        ev = ir.evaluate(configs_rules(wf, "m1.small"), max_iter=1)
        expected = sum(
            runtime_model.mean(wf.task(t), "m1.small") * catalog.price("m1.small") / 3600
            for t in wf.task_ids
        )
        # The IR's exetime means come from histograms (bounded discretization error).
        assert ev.goal_value == pytest.approx(expected, rel=0.05)
        assert ev.feasible

    def test_loose_deadline_feasible_tight_infeasible(self, setup, runtime_model):
        wf, reg = setup
        serial = sum(runtime_model.mean(wf.task(t), "m1.small") for t in wf.task_ids)
        loose = translate(
            WLogProgram.from_source(scheduling_program(percentile=90, deadline_seconds=serial * 2)),
            reg,
        )
        tight = translate(
            WLogProgram.from_source(scheduling_program(percentile=90, deadline_seconds=serial * 0.5)),
            reg,
        )
        rules = configs_rules(wf, "m1.small")
        assert loose.evaluate(rules, max_iter=20).feasible
        assert not tight.evaluate(rules, max_iter=20).feasible

    def test_probability_between_zero_and_one(self, setup, runtime_model):
        wf, reg = setup
        serial = sum(runtime_model.mean(wf.task(t), "m1.small") for t in wf.task_ids)
        ir = translate(
            WLogProgram.from_source(scheduling_program(percentile=96, deadline_seconds=serial)),
            reg,
        )
        ev = ir.evaluate(configs_rules(wf, "m1.small"), max_iter=40)
        assert 0.0 <= ev.constraint_probabilities[0] <= 1.0
        assert ev.iterations == 40

    def test_montecarlo_reproducible(self, setup):
        wf, reg = setup
        ir = translate(WLogProgram.from_source(scheduling_program(deadline_seconds=3000)), reg)
        rules = configs_rules(wf, "m1.medium")
        a = ir.evaluate(rules, max_iter=10, seed=3)
        b = ir.evaluate(rules, max_iter=10, seed=3)
        assert a.goal_value == b.goal_value
        assert a.constraint_probabilities == b.constraint_probabilities

    def test_cheaper_type_cheaper_goal(self, setup):
        wf, reg = setup
        ir = translate(WLogProgram.from_source(scheduling_program(deadline_seconds=1e9)), reg)
        small = ir.evaluate(configs_rules(wf, "m1.small"), max_iter=10)
        xlarge = ir.evaluate(configs_rules(wf, "m1.xlarge"), max_iter=10)
        assert small.goal_value < xlarge.goal_value

    def test_missing_goal_solution_raises(self, setup):
        wf, reg = setup
        # No configs facts at all: totalcost still proves (empty findall),
        # but maxtime fails -> constraint unsatisfied, not an error.
        ir = translate(WLogProgram.from_source(scheduling_program(deadline_seconds=100)), reg)
        ev = ir.evaluate((), max_iter=2)
        assert not ev.feasible

    def test_invalid_max_iter(self, setup):
        wf, reg = setup
        ir = translate(WLogProgram.from_source(scheduling_program()), reg)
        with pytest.raises(WLogError):
            ir.evaluate((), max_iter=0)


class TestDeterministicCollapse:
    def test_single_iteration_exact(self, setup):
        wf, reg = setup
        ir = translate(
            WLogProgram.from_source(scheduling_program(deadline_seconds=1e9)),
            reg,
            deterministic=True,
        )
        ev = ir.evaluate(configs_rules(wf, "m1.large"), max_iter=500)
        assert ev.iterations == 1  # deterministic mode ignores max_iter
        assert ev.constraint_probabilities in ((1.0,), (0.0,))


class TestReliabilityConstraint:
    def faulty(self, reg, *, failure_rate=0.05, max_retries=3, percentile=99.0):
        src = scheduling_program(
            deadline_seconds=1e9,
            failure_rate=failure_rate,
            mtbf_seconds=1e15,
            reliability_percentile=percentile,
            max_retries=max_retries,
        )
        return translate(WLogProgram.from_source(src), reg, deterministic=True)

    def test_generous_retry_budget_feasible(self, setup):
        wf, reg = setup
        ir = self.faulty(reg, failure_rate=0.05, max_retries=3)
        ev = ir.evaluate(configs_rules(wf, "m1.small"), max_iter=5)
        assert ev.feasible

    def test_no_retries_high_rate_infeasible(self, setup):
        wf, reg = setup
        # Per-task success 0.5, three tasks: ~12.5% << 99%.
        ir = self.faulty(reg, failure_rate=0.5, max_retries=0)
        ev = ir.evaluate(configs_rules(wf, "m1.small"), max_iter=5)
        assert not ev.feasible

    def test_reliability_threshold_is_exact(self, setup):
        wf, reg = setup
        # Analytic plan success with rate 0.5 and one retry: 0.75^3.
        plan_success = 0.75**3 * 100.0
        ok = self.faulty(reg, failure_rate=0.5, max_retries=1, percentile=plan_success)
        ev = ok.evaluate(configs_rules(wf, "m1.small"), max_iter=5)
        assert ev.feasible
        tight = self.faulty(
            reg, failure_rate=0.5, max_retries=1, percentile=plan_success + 0.1
        )
        assert not tight.evaluate(configs_rules(wf, "m1.small"), max_iter=5).feasible
