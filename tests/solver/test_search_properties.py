"""Property-based tests for the search and evaluation layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.instance_types import ec2_catalog
from repro.solver.backends import CompiledProblem, ScalarBackend, VectorizedBackend
from repro.solver.search import GenericSearch
from repro.solver.state import PlanState
from repro.workflow.generators import random_dag
from repro.workflow.runtime_model import RuntimeModel

CATALOG = ec2_catalog()
MODEL = RuntimeModel(CATALOG)


def compile_problem(num_tasks, edge_prob, seed, deadline_frac):
    wf = random_dag(num_tasks, edge_prob=edge_prob, seed=seed)
    # Anchor the deadline between the fastest and slowest uniform plans.
    fast = sum(MODEL.mean(wf.task(t), "m1.xlarge") for t in wf.task_ids)
    slow = sum(MODEL.mean(wf.task(t), "m1.small") for t in wf.task_ids)
    deadline = fast + deadline_frac * max(slow - fast, 1.0)
    return CompiledProblem.compile(
        wf, CATALOG, deadline=deadline, percentile=90.0,
        num_samples=24, seed=seed, runtime_model=MODEL,
    )


problem_params = st.tuples(
    st.integers(min_value=2, max_value=12),      # tasks
    st.floats(min_value=0.0, max_value=0.5),     # edge prob
    st.integers(min_value=0, max_value=300),     # seed
    st.floats(min_value=0.1, max_value=2.0),     # deadline fraction
)


@given(problem_params)
@settings(max_examples=25, deadline=None)
def test_backends_agree_exactly(params):
    problem = compile_problem(*params)
    rng = np.random.default_rng(params[2])
    states = [
        PlanState(rng.integers(0, problem.num_types, problem.num_tasks))
        for _ in range(3)
    ]
    gpu = VectorizedBackend().makespan_samples(problem, states)
    cpu = ScalarBackend().makespan_samples(problem, states)
    np.testing.assert_allclose(gpu, cpu, rtol=1e-12)


@given(problem_params)
@settings(max_examples=15, deadline=None)
def test_search_never_worse_than_uniform_states(params):
    problem = compile_problem(*params)
    search = GenericSearch(max_evaluations=150)
    result = search.solve(problem)
    backend = VectorizedBackend()
    for t in range(problem.num_types):
        ev = backend.evaluate(problem, PlanState.uniform(problem.num_tasks, t))
        assert not ev.better_than(result.best_eval)


@given(problem_params)
@settings(max_examples=15, deadline=None)
def test_promote_cost_delta_is_exact(params):
    """Eq. 1 cost changes by exactly the promoted task's price-time delta.

    Note the paper's pruning premise ("child states always generate
    higher cost") is only *approximately* true on the real m1 ladder:
    m1.medium at $0.087/h is marginally cheaper per unit of CPU work
    than m1.small at $0.044/h, so promoting a CPU-bound task can shave
    a fraction of a percent.  The exact decomposition below is the
    invariant that actually holds.
    """
    problem = compile_problem(*params)
    rng = np.random.default_rng(params[2] + 1)
    state = PlanState(rng.integers(0, problem.num_types, problem.num_tasks))
    base = problem.expected_cost(state.assignment)
    for i in range(problem.num_tasks):
        child = state.promote(i, problem.num_types)
        if child is None:
            continue
        t_old = int(state.assignment[i])
        t_new = t_old + 1
        delta = (
            problem.mean_times[t_new, i] * problem.prices[t_new]
            - problem.mean_times[t_old, i] * problem.prices[t_old]
        ) / 3600.0
        assert problem.expected_cost(child.assignment) == pytest.approx(
            base + delta, rel=1e-9, abs=1e-12
        )
        # And the deviation from monotonicity is bounded by the ladder's
        # near-linearity: never more than a 2% cost drop per promote.
        assert problem.expected_cost(child.assignment) >= base * 0.98 - 1e-12


@given(problem_params)
@settings(max_examples=15, deadline=None)
def test_promote_never_decreases_probability(params):
    """Promoting a task never makes the deadline *less* likely in the
    mean: makespan samples are monotone in per-task times, and faster
    types dominate slower ones in mean.  (Checked on the MC estimate
    with shared samples, which preserves monotonicity per-realization
    only when the faster type's samples are smaller; we assert the
    weaker mean-makespan direction.)"""
    problem = compile_problem(*params)
    rng = np.random.default_rng(params[2] + 2)
    state = PlanState(rng.integers(0, problem.num_types - 1, problem.num_tasks))
    backend = VectorizedBackend()
    base = backend.evaluate(problem, state)
    child = state.promote(int(rng.integers(0, problem.num_tasks)), problem.num_types)
    assert child is not None
    promoted = backend.evaluate(problem, child)
    assert promoted.mean_makespan <= base.mean_makespan * 1.1
