"""Tests for the compiled problem and evaluation backends."""

import numpy as np
import pytest

from repro.common.errors import SolverError
from repro.solver.backends import (
    CompiledProblem,
    ScalarBackend,
    VectorizedBackend,
    get_backend,
)
from repro.solver.state import PlanState
from repro.workflow.critical_path import makespan_samples
from repro.workflow.generators import montage, random_dag


@pytest.fixture(scope="module")
def problem(catalog, runtime_model):
    wf = montage(degrees=1, seed=2)
    return CompiledProblem.compile(
        wf, catalog, deadline=2000.0, percentile=96.0, num_samples=64,
        seed=5, runtime_model=runtime_model,
    )


class TestCompile:
    def test_shapes(self, problem, catalog):
        k, s, n = problem.tensor.shape
        assert k == len(catalog)
        assert s == 64
        assert n == len(problem.workflow)
        assert problem.mean_times.shape == (k, n)
        assert problem.prices.shape == (k,)

    def test_parent_indices_topological(self, problem):
        for i, parents in enumerate(problem.parent_indices):
            assert all(p < i for p in parents)

    def test_invalid_deadline_rejected(self, problem, catalog, runtime_model):
        with pytest.raises(SolverError):
            CompiledProblem.compile(problem.workflow, catalog, deadline=-1.0)

    def test_invalid_percentile_rejected(self, problem, catalog):
        with pytest.raises(SolverError):
            CompiledProblem.compile(problem.workflow, catalog, deadline=10.0, percentile=0.0)

    def test_with_deadline(self, problem):
        other = problem.with_deadline(999.0, percentile=90.0)
        assert other.deadline == 999.0
        assert other.required_probability == pytest.approx(0.9)
        assert other.tensor is problem.tensor

    def test_expected_cost_eq1(self, problem):
        assign = np.zeros(problem.num_tasks, dtype=int)
        idx = np.arange(problem.num_tasks)
        manual = (problem.mean_times[0, idx] * problem.prices[0]).sum() / 3600.0
        assert problem.expected_cost(assign) == pytest.approx(manual)

    def test_state_from_assignment(self, problem, catalog):
        mapping = {tid: "m1.large" for tid in problem.workflow.task_ids}
        st = problem.state_from_assignment(mapping)
        assert set(st.assignment.tolist()) == {catalog.index_of("m1.large")}


class TestBackends:
    def test_factory(self):
        assert get_backend("gpu").name == "gpu"
        assert get_backend("cpu").name == "cpu"
        with pytest.raises(SolverError):
            get_backend("tpu")

    def test_vectorized_matches_scalar_exactly(self, problem):
        states = [PlanState.uniform(problem.num_tasks, t) for t in range(problem.num_types)]
        gpu = VectorizedBackend().makespan_samples(problem, states)
        cpu = ScalarBackend().makespan_samples(problem, states)
        np.testing.assert_allclose(gpu, cpu, rtol=1e-12)

    def test_vectorized_matches_reference_makespan(self, problem):
        state = PlanState.uniform(problem.num_tasks, 1)
        mk = VectorizedBackend().makespan_samples(problem, [state])[0]
        n = problem.num_tasks
        times = problem.tensor[state.assignment, :, np.arange(n)].T  # (S, N)
        expected = makespan_samples(problem.workflow, times)
        np.testing.assert_allclose(mk, expected)

    def test_mixed_assignment_gathers_correctly(self, problem):
        rng = np.random.default_rng(0)
        assign = rng.integers(0, problem.num_types, size=problem.num_tasks)
        state = PlanState(assign)
        gpu = VectorizedBackend().makespan_samples(problem, [state])
        cpu = ScalarBackend().makespan_samples(problem, [state])
        np.testing.assert_allclose(gpu, cpu)

    def test_evaluate_fields(self, problem):
        ev = VectorizedBackend().evaluate(problem, PlanState.uniform(problem.num_tasks, 3))
        assert 0.0 <= ev.probability <= 1.0
        assert ev.cost > 0
        assert ev.mean_makespan > 0
        assert ev.feasible == (ev.probability >= problem.required_probability - 1e-12)

    def test_faster_types_higher_probability(self, problem):
        backend = VectorizedBackend()
        evs = [
            backend.evaluate(problem, PlanState.uniform(problem.num_tasks, t))
            for t in range(problem.num_types)
        ]
        assert evs[0].probability <= evs[-1].probability

    def test_empty_batch(self, problem):
        assert VectorizedBackend().evaluate_batch(problem, []) == []

    def test_wrong_state_length_rejected(self, problem):
        with pytest.raises(SolverError):
            VectorizedBackend().evaluate(problem, PlanState.uniform(3, 0))

    def test_out_of_range_type_rejected(self, problem):
        state = PlanState.uniform(problem.num_tasks, problem.num_types + 3)
        with pytest.raises(SolverError):
            VectorizedBackend().evaluate(problem, state)

    def test_negative_type_rejected(self, problem):
        # PlanState itself refuses negative indices, so fake a corrupted
        # state: the backend must still reject it instead of silently
        # wrapping around to the most expensive type (regression).
        class CorruptState:
            assignment = np.full(problem.num_tasks, -1, dtype=np.int64)
            key = assignment.tobytes()

        with pytest.raises(SolverError, match="negative"):
            VectorizedBackend().makespan_samples(problem, [CorruptState()])

    def test_agreement_on_random_dags(self, catalog, runtime_model):
        for seed in range(3):
            wf = random_dag(10, edge_prob=0.3, seed=seed)
            prob = CompiledProblem.compile(
                wf, catalog, deadline=500.0, num_samples=16, seed=seed,
                runtime_model=runtime_model,
            )
            rng = np.random.default_rng(seed)
            states = [PlanState(rng.integers(0, 4, size=10)) for _ in range(4)]
            np.testing.assert_allclose(
                VectorizedBackend().makespan_samples(prob, states),
                ScalarBackend().makespan_samples(prob, states),
            )
