"""Tests for the plan-state model."""

import numpy as np
import pytest

from repro.common.errors import SolverError
from repro.solver.state import PlanState, StateEval


class TestPlanState:
    def test_uniform(self):
        s = PlanState.uniform(5, 2)
        assert len(s) == 5
        assert set(s.assignment.tolist()) == {2}

    def test_immutability(self):
        s = PlanState.uniform(3)
        with pytest.raises(ValueError):
            s.assignment[0] = 1

    def test_equality_by_content(self):
        a = PlanState(np.array([0, 1, 2]))
        b = PlanState(np.array([0, 1, 2]))
        assert a == b and hash(a) == hash(b)
        assert a != PlanState(np.array([0, 1, 3]))

    def test_with_type_copies(self):
        a = PlanState.uniform(3)
        b = a.with_type(1, 2)
        assert a.assignment[1] == 0
        assert b.assignment[1] == 2

    def test_promote_demote(self):
        s = PlanState.uniform(2, 0)
        up = s.promote(0, num_types=4)
        assert up.assignment[0] == 1
        assert up.demote(0) == s

    def test_promote_saturates(self):
        s = PlanState.uniform(2, 3)
        assert s.promote(0, num_types=4) is None

    def test_demote_saturates(self):
        assert PlanState.uniform(2, 0).demote(0) is None

    def test_negative_index_rejected(self):
        with pytest.raises(SolverError):
            PlanState(np.array([-1, 0]))

    def test_2d_rejected(self):
        with pytest.raises(SolverError):
            PlanState(np.zeros((2, 2)))


class TestStateEval:
    def _ev(self, cost, prob, feasible):
        return StateEval(cost=cost, probability=prob, feasible=feasible, mean_makespan=1.0)

    def test_feasible_beats_infeasible(self):
        good = self._ev(100.0, 0.99, True)
        bad = self._ev(1.0, 0.5, False)
        assert good.better_than(bad)
        assert not bad.better_than(good)

    def test_among_feasible_cheaper_wins(self):
        a = self._ev(1.0, 0.97, True)
        b = self._ev(2.0, 0.99, True)
        assert a.better_than(b)

    def test_among_infeasible_higher_probability_wins(self):
        a = self._ev(5.0, 0.9, False)
        b = self._ev(1.0, 0.5, False)
        assert a.better_than(b)

    def test_maximize_mode(self):
        a = self._ev(2.0, 1.0, True)
        b = self._ev(1.0, 1.0, True)
        assert a.better_than(b, mode="maximize")

    def test_anything_beats_none(self):
        assert self._ev(1.0, 0.0, False).better_than(None)
