"""Tests for the generic (Algorithm 2) and A* searches."""

import pytest

from repro.common.errors import SolverError
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.solver.search import AStarSearch, GenericSearch
from repro.solver.state import PlanState
from repro.workflow.generators import montage, pipeline


@pytest.fixture(scope="module")
def problem(catalog, runtime_model):
    wf = montage(degrees=1, seed=2)
    from repro.engine.plan import deadline_presets

    d = deadline_presets(wf, catalog, runtime_model).medium
    return CompiledProblem.compile(
        wf, catalog, deadline=d, percentile=96.0, num_samples=100,
        seed=5, runtime_model=runtime_model,
    )


class TestGenericSearch:
    def test_finds_feasible_solution(self, problem):
        result = GenericSearch(max_evaluations=1200).solve(problem)
        assert result.feasible_found
        assert result.best_eval.probability >= problem.required_probability - 1e-9

    def test_beats_or_matches_uniform_feasible_states(self, problem):
        result = GenericSearch(max_evaluations=1200).solve(problem)
        backend = VectorizedBackend()
        for t in range(problem.num_types):
            ev = backend.evaluate(problem, PlanState.uniform(problem.num_tasks, t))
            if ev.feasible:
                assert result.best_eval.cost <= ev.cost + 1e-12

    def test_respects_evaluation_budget(self, problem):
        result = GenericSearch(max_evaluations=50).solve(problem)
        assert result.evaluations <= 50 + problem.num_types + 8  # seeds evaluated up front

    def test_seeds_are_used(self, problem):
        seed_state = PlanState.uniform(problem.num_tasks, problem.num_types - 1)
        result = GenericSearch(max_evaluations=20).solve(problem, seeds=[seed_state])
        # The all-fastest seed is feasible, so the best must be at least that good.
        backend = VectorizedBackend()
        ev = backend.evaluate(problem, seed_state)
        assert result.best_eval.cost <= ev.cost + 1e-12

    def test_wrong_seed_length_rejected(self, problem):
        with pytest.raises(SolverError):
            GenericSearch().solve(problem, seeds=[PlanState.uniform(2, 0)])

    def test_trace_monotone(self, problem):
        result = GenericSearch(max_evaluations=800).solve(problem)
        costs = [c for _, c in result.trace]
        assert all(b <= a + 1e-12 for a, b in zip(costs, costs[1:]))

    def test_invalid_parameters(self):
        with pytest.raises(SolverError):
            GenericSearch(beam_width=0)
        with pytest.raises(SolverError):
            GenericSearch(expand_per_iter=0)

    def test_batched_expansion_matches_serial_quality(self, problem):
        """Wider per-iteration expansion keeps priority/pruning semantics:
        both settings must land on a feasible plan no worse than the
        all-fastest uniform seed."""
        serial = GenericSearch(max_evaluations=400, expand_per_iter=1).solve(problem)
        batched = GenericSearch(max_evaluations=400, expand_per_iter=8).solve(problem)
        assert serial.feasible_found and batched.feasible_found
        fastest = VectorizedBackend().evaluate(
            problem, PlanState.uniform(problem.num_tasks, problem.num_types - 1)
        )
        assert serial.best_eval.cost <= fastest.cost + 1e-12
        assert batched.best_eval.cost <= fastest.cost + 1e-12

    def test_cache_counters_on_result(self, problem):
        from repro.solver.cache import MakespanCache

        backend = VectorizedBackend(cache=MakespanCache())
        search = GenericSearch(backend=backend, max_evaluations=60)
        cold = search.solve(problem)
        assert cold.cache_misses > 0
        # Re-solving a with_deadline derivation reuses makespan rows.
        warm = search.solve(problem.with_deadline(problem.deadline * 2.0))
        assert warm.cache_hits > 0
        # Without a cache the counters stay zero.
        plain = GenericSearch(max_evaluations=60).solve(problem)
        assert plain.cache_hits == 0 and plain.cache_misses == 0
        with pytest.raises(SolverError):
            GenericSearch(max_evaluations=0)

    def test_impossible_deadline_reports_infeasible(self, catalog, runtime_model):
        wf = pipeline(3, seed=0, runtime=600.0)
        prob = CompiledProblem.compile(
            wf, catalog, deadline=1.0, percentile=99.0, num_samples=32,
            runtime_model=runtime_model,
        )
        result = GenericSearch(max_evaluations=300).solve(prob)
        assert not result.feasible_found

    def test_assignment_names(self, problem, catalog):
        result = GenericSearch(max_evaluations=300).solve(problem)
        names = result.assignment_names(problem)
        assert set(names) == set(problem.workflow.task_ids)
        assert set(names.values()) <= set(catalog.type_names)


class TestAStar:
    def test_finds_shortest_path_on_grid(self):
        """Classic sanity check: A* on a line graph."""
        goal = 7

        def neighbors(x):
            return [x + 1, x + 2]

        result = AStarSearch().solve(
            initial=0,
            neighbors=neighbors,
            g_score=lambda x: float(x != 0),  # not used meaningfully here
            h_score=lambda x: float(goal - x),
            is_goal=lambda x: x >= goal,
        )
        assert result.found_goal
        assert result.best_state >= goal

    def test_admissible_heuristic_optimal_knapsack(self):
        """Subset selection: A* must find the optimal admitted subset."""
        costs = {0: 5.0, 1: 4.0, 2: 3.0}
        scores = {0: 1.0, 1: 0.5, 2: 0.25}
        budget = 7.5
        candidates = sorted(costs)

        def addable(state):
            rem = budget - sum(costs[p] for p in state)
            start = max(state) + 1 if state else 0
            return [p for p in candidates if p >= start and costs[p] <= rem]

        result = AStarSearch().solve(
            initial=frozenset(),
            neighbors=lambda s: [frozenset(s | {p}) for p in addable(s)],
            g_score=lambda s: -sum(scores[p] for p in s),
            h_score=lambda s: -sum(
                scores[p]
                for p in candidates
                if (not s or p > max(s)) and costs[p] <= budget - sum(costs[q] for q in s)
            ),
            is_goal=lambda s: not addable(s),
        )
        # Best subset within 7.5: {0} (score 1.0) vs {1, 2} (0.75) -> {0}... but
        # {0} leaves 2.5 >= cost of nothing else? cost 3 > 2.5, so {0} is terminal.
        assert result.found_goal
        assert result.best_state == frozenset({0})

    def test_expansion_cap(self):
        result = AStarSearch(max_expansions=3).solve(
            initial=0,
            neighbors=lambda x: [x + 1],
            g_score=lambda x: 0.0,
            h_score=lambda x: 0.0,
            is_goal=lambda x: False,
        )
        assert not result.found_goal
        assert result.expanded == 3

    def test_invalid_max_expansions(self):
        with pytest.raises(SolverError):
            AStarSearch(max_expansions=0)

    def test_budget_exhaustion_reports_pushed_goal(self):
        """Regression: ``found_goal`` used to be frozen at
        ``is_goal(initial)`` when the expansion budget ran out, even if a
        goal state had been pushed (and tracked as best) but not popped."""
        result = AStarSearch(max_expansions=1).solve(
            initial=0,
            neighbors=lambda s: [1] if s == 0 else [],
            g_score=lambda s: 0.0 if s == 1 else 1.0,
            h_score=lambda s: 0.0,
            is_goal=lambda s: s == 1,
        )
        assert result.best_state == 1
        assert result.found_goal
