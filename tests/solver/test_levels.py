"""Tests for the level-parallel DAG layout (LevelSchedule).

The load-bearing property: the level kernel is *bit-identical* to both
the per-task propagation loop and the scalar reference backend -- the
refactor changes iteration order, never arithmetic.
"""

import numpy as np
import pytest

from repro.common.errors import SolverError
from repro.solver.backends import (
    CompiledProblem,
    ScalarBackend,
    VectorizedBackend,
    _propagate_taskloop,
)
from repro.solver.levels import LevelSchedule
from repro.solver.state import PlanState
from repro.workflow.generators import random_dag


def _random_parents(n: int, seed: int, max_fanin: int = 5):
    """Random topological parent lists (parents always have lower index)."""
    rng = np.random.default_rng(seed)
    parents = []
    for i in range(n):
        k = int(rng.integers(0, min(i, max_fanin) + 1))
        parents.append(tuple(sorted(rng.choice(i, size=k, replace=False))) if k else ())
    return tuple(parents)


def _reference_finish(lanes: np.ndarray, parents) -> np.ndarray:
    """Straight-line finish-time recurrence, (M, N) lane-major."""
    finish = np.empty_like(lanes)
    for i, ps in enumerate(parents):
        ready = np.zeros(lanes.shape[0])
        for p in ps:
            ready = np.maximum(ready, finish[:, p])
        finish[:, i] = ready + lanes[:, i]
    return finish


class TestConstruction:
    def test_diamond_levels(self):
        sched = LevelSchedule.from_parent_indices(((), (0,), (0,), (1, 2)))
        assert sched.num_tasks == 4
        assert sched.num_levels == 3
        assert sched.level_bounds == ((0, 1), (1, 3), (3, 4))
        assert sched.max_width == 2
        # Stable permutation: topological numbering preserved per level.
        np.testing.assert_array_equal(sched.order, [0, 1, 2, 3])

    def test_parent_matrix_padding(self):
        sched = LevelSchedule.from_parent_indices(((), (0,), (0, 1)))
        assert sched.parent_matrix.shape == (3, 2)
        np.testing.assert_array_equal(
            sched.parent_matrix, [[-1, -1], [0, -1], [0, 1]]
        )

    def test_level_contiguous_permutation(self):
        # Task 1 depends on 2-deep chain; tasks 2, 3 are roots.
        parents = ((), (0,), (), ())
        sched = LevelSchedule.from_parent_indices(parents)
        assert sched.level_bounds == ((0, 3), (3, 4))
        np.testing.assert_array_equal(sched.order, [0, 2, 3, 1])

    def test_rejects_forward_edge(self):
        with pytest.raises(SolverError):
            LevelSchedule.from_parent_indices(((), (2,), (0,)))

    def test_rejects_self_edge(self):
        with pytest.raises(SolverError):
            LevelSchedule.from_parent_indices(((), (1,)))

    def test_big_fanin_uses_gather_path(self):
        n = 10
        parents = tuple(() for _ in range(n - 1)) + (tuple(range(n - 1)),)
        sched = LevelSchedule.from_parent_indices(parents)
        assert sched.level_columns[-1] is None  # fan-in 9 > column cutoff
        assert sched.level_parents[-1].shape == (1, n - 1)


class TestPropagation:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("n", [1, 2, 7, 40])
    def test_matches_reference_recurrence(self, n, seed):
        parents = _random_parents(n, seed)
        sched = LevelSchedule.from_parent_indices(parents)
        rng = np.random.default_rng(seed + 1000)
        lanes = rng.uniform(0.5, 50.0, size=(9, n))
        np.testing.assert_array_equal(
            sched.propagate(lanes), _reference_finish(lanes, parents)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_taskloop_bitwise(self, seed):
        parents = _random_parents(30, seed, max_fanin=8)
        sched = LevelSchedule.from_parent_indices(parents)
        rng = np.random.default_rng(seed)
        lanes = rng.uniform(0.0, 100.0, size=(12, 30))
        np.testing.assert_array_equal(
            sched.propagate(lanes), _propagate_taskloop(lanes, parents)
        )

    def test_makespan_is_column_max(self):
        parents = _random_parents(15, 3)
        sched = LevelSchedule.from_parent_indices(parents)
        rng = np.random.default_rng(3)
        lanes = rng.uniform(1.0, 10.0, size=(4, 15))
        permuted = np.ascontiguousarray(lanes.T).take(sched.order, axis=0)
        np.testing.assert_array_equal(
            sched.makespan(permuted), sched.propagate(lanes).max(axis=1)
        )

    def test_shape_mismatch_rejected(self):
        sched = LevelSchedule.from_parent_indices(((), (0,)))
        with pytest.raises(SolverError):
            sched.propagate_permuted(np.zeros((3, 5)))


class TestBackendEquivalence:
    """Property-style sweep: random DAGs across widths/depths/seeds."""

    @pytest.mark.parametrize(
        "num_tasks,edge_prob,seed",
        [
            (1, 0.0, 0),     # single task
            (6, 0.4, 1),     # small, dense
            (24, 0.05, 2),   # wide and shallow
            (24, 0.9, 3),    # narrow and deep (near-chain)
            (57, 0.15, 4),   # mid-size, mixed fan-in
        ],
    )
    def test_vectorized_matches_scalar_exactly(
        self, catalog, runtime_model, num_tasks, edge_prob, seed
    ):
        wf = random_dag(num_tasks, edge_prob=edge_prob, seed=seed)
        problem = CompiledProblem.compile(
            wf, catalog, deadline=5e4, percentile=90.0, num_samples=12,
            seed=seed, runtime_model=runtime_model,
        )
        rng = np.random.default_rng(seed + 7)
        states = [
            PlanState(rng.integers(0, problem.num_types, num_tasks))
            for _ in range(5)
        ]
        level = VectorizedBackend().makespan_samples(problem, states)
        taskloop = VectorizedBackend(level_parallel=False).makespan_samples(
            problem, states
        )
        np.testing.assert_array_equal(level, taskloop)
        scalar = ScalarBackend()
        for i, st in enumerate(states):
            np.testing.assert_array_equal(
                level[i], scalar.makespan_samples(problem, [st])[0]
            )
