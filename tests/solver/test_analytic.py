"""Tests for analytic (histogram-propagation) makespan evaluation."""

import numpy as np
import pytest

from repro.common.errors import SolverError
from repro.solver.analytic import analytic_deadline_probability, analytic_makespan
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.workflow.dag import Task, Workflow
from repro.workflow.generators import pipeline

MB = 1_000_000


def chain_workflow(n=3, data_mb=2000.0):
    return pipeline(n, seed=0, runtime=600.0, data_mb=data_mb)


class TestChain:
    """On a chain the propagation is pure convolution: exact."""

    def test_mean_matches_model(self, catalog, runtime_model):
        wf = chain_workflow()
        assignment = {t: "m1.small" for t in wf.task_ids}
        h = analytic_makespan(wf, assignment, runtime_model)
        expected = sum(runtime_model.mean(wf.task(t), "m1.small") for t in wf.task_ids)
        assert h.mean() == pytest.approx(expected, rel=0.02)

    def test_variance_adds_on_chain(self, catalog, runtime_model):
        wf = chain_workflow()
        assignment = {t: "m1.small" for t in wf.task_ids}
        h = analytic_makespan(wf, assignment, runtime_model)
        per_task = runtime_model.cached_histogram(wf.task(wf.task_ids[0]), "m1.small")
        # Three similar independent tasks: var roughly 3x one task's var.
        assert h.variance() == pytest.approx(3 * per_task.variance(), rel=0.35)


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize("type_name", ["m1.small", "m1.large"])
    def test_pipeline_close_to_mc(self, catalog, runtime_model, type_name):
        wf = chain_workflow(4)
        assignment = {t: type_name for t in wf.task_ids}
        h = analytic_makespan(wf, assignment, runtime_model, max_bins=64)
        problem = CompiledProblem.compile(
            wf, catalog, deadline=1e9, num_samples=4000, seed=9,
            runtime_model=runtime_model,
        )
        mk = VectorizedBackend().makespan_samples(
            problem, [problem.state_from_assignment(assignment)]
        )[0]
        assert h.mean() == pytest.approx(mk.mean(), rel=0.03)
        assert h.percentile(95) == pytest.approx(np.percentile(mk, 95), rel=0.05)

    def test_diamond_tail_conservative(self, catalog, runtime_model, diamond):
        """At joins the independence approximation biases the tail up
        (conservative for deadline checks), never badly down."""
        assignment = {t: "m1.medium" for t in diamond.task_ids}
        h = analytic_makespan(diamond, assignment, runtime_model, max_bins=64)
        problem = CompiledProblem.compile(
            diamond, catalog, deadline=1e9, num_samples=4000, seed=9,
            runtime_model=runtime_model,
        )
        mk = VectorizedBackend().makespan_samples(
            problem, [problem.state_from_assignment(assignment)]
        )[0]
        assert h.percentile(95) >= np.percentile(mk, 95) * 0.97
        assert h.mean() == pytest.approx(mk.mean(), rel=0.05)


class TestDeadlineProbability:
    def test_loose_deadline_certain(self, runtime_model):
        wf = chain_workflow()
        assignment = {t: "m1.small" for t in wf.task_ids}
        assert analytic_deadline_probability(wf, assignment, runtime_model, 1e9) == 1.0

    def test_impossible_deadline_zero(self, runtime_model):
        wf = chain_workflow()
        assignment = {t: "m1.small" for t in wf.task_ids}
        assert analytic_deadline_probability(wf, assignment, runtime_model, 1.0) == 0.0

    def test_monotone_in_deadline(self, runtime_model):
        wf = chain_workflow()
        assignment = {t: "m1.small" for t in wf.task_ids}
        h = analytic_makespan(wf, assignment, runtime_model)
        probs = [
            analytic_deadline_probability(wf, assignment, runtime_model, d)
            for d in (h.percentile(10), h.percentile(50), h.percentile(90))
        ]
        assert probs == sorted(probs)

    def test_invalid_args(self, runtime_model, diamond):
        assignment = {t: "m1.small" for t in diamond.task_ids}
        with pytest.raises(SolverError):
            analytic_deadline_probability(diamond, assignment, runtime_model, 0.0)
        with pytest.raises(SolverError):
            analytic_makespan(diamond, assignment, runtime_model, max_bins=2)
        with pytest.raises(SolverError):
            analytic_makespan(diamond, {"a": "m1.small"}, runtime_model)


class TestDegenerate:
    def test_empty_workflow(self, runtime_model):
        wf = Workflow("empty", [])
        assert analytic_makespan(wf, {}, runtime_model).mean() == 0.0

    def test_cpu_only_tasks_deterministic(self, runtime_model):
        tasks = [Task(task_id="a", runtime_ref=100.0), Task(task_id="b", runtime_ref=50.0)]
        wf = Workflow("cpu", tasks, [("a", "b")])
        h = analytic_makespan(wf, {"a": "m1.small", "b": "m1.small"}, runtime_model)
        assert h.std() == pytest.approx(0.0)
        assert h.mean() == pytest.approx(150.0)


class _DuckWorkflow:
    """The minimal surface the propagation walks, with broken edges.

    :class:`Workflow` refuses to construct cycles, but duck-typed
    workflow objects reach :func:`analytic_makespan` in practice -- the
    explicit topological validation must turn their inconsistencies
    into a named :class:`SolverError`, not a ``KeyError`` mid-loop.
    """

    name = "duck"

    def __init__(self, parents):
        self._parents = parents
        self.task_ids = tuple(parents)

    def parents(self, tid):
        return tuple(self._parents[tid])

    def task(self, tid):
        return Task(task_id=tid, runtime_ref=100.0)

    def leaves(self):
        with_children = {p for ps in self._parents.values() for p in ps}
        return [t for t in self.task_ids if t not in with_children]


class TestTopologicalValidation:
    def test_cycle_raises_named_error(self, runtime_model):
        wf = _DuckWorkflow({"a": ["b"], "b": ["a"]})
        with pytest.raises(SolverError, match="not acyclic"):
            analytic_makespan(wf, {"a": "m1.small", "b": "m1.small"}, runtime_model)

    def test_self_loop_raises(self, runtime_model):
        wf = _DuckWorkflow({"a": [], "b": ["b"]})
        with pytest.raises(SolverError, match="not acyclic"):
            analytic_makespan(wf, {"a": "m1.small", "b": "m1.small"}, runtime_model)

    def test_unknown_parent_raises(self, runtime_model):
        wf = _DuckWorkflow({"a": ["ghost"]})
        with pytest.raises(SolverError, match="unknown parent"):
            analytic_makespan(wf, {"a": "m1.small"}, runtime_model)

    def test_error_names_cyclic_tasks(self, runtime_model):
        wf = _DuckWorkflow({"ok": [], "x": ["y"], "y": ["x"]})
        with pytest.raises(SolverError, match=r"\['x', 'y'\]"):
            analytic_makespan(
                wf, {t: "m1.small" for t in ("ok", "x", "y")}, runtime_model
            )

    def test_declaration_order_not_trusted(self, runtime_model):
        """Tasks declared child-before-parent still propagate correctly:
        the order is re-derived, not read off ``task_ids``."""
        wf = _DuckWorkflow({"late": ["early"], "early": []})
        h = analytic_makespan(
            wf, {"late": "m1.small", "early": "m1.small"}, runtime_model
        )
        assert h.mean() > 0.0
