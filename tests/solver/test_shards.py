"""Tests for the distributed beam solve (PR 8).

The contract under test is bit-identity: ``Deco(workers=N)`` must pick
the same plan, through the same search trajectory, as the serial solve
-- for any N, with every evaluation-tier toggle in any position.  The
supporting lemma (per-candidate kernel values do not depend on batch
composition) gets its own property-based test, and the frontier
tie-break that makes the shard merge order-independent is pinned
directly.
"""

import os
import random
import signal
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.instance_types import ec2_catalog
from repro.engine.deco import Deco
from repro.parallel.executor import chunk_evenly
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.solver.search import GenericSearch
from repro.solver.shards import ShardCostModel, ShardedEvaluator
from repro.solver.state import PlanState, StateEval
from repro.workflow.generators import montage
from repro.workflow.runtime_model import RuntimeModel

CATALOG = ec2_catalog()
MODEL = RuntimeModel(CATALOG)

# Parent-side decisions: identical at any worker count (DESIGN.md §13).
TRAJECTORY_COUNTERS = (
    "evaluations",
    "expansions",
    "exact_evals",
    "screen_evals",
    "screened_out",
    "analytic_evals",
    "analytic_screened_out",
    "analytic_accepted",
    "pruned_candidates",
)


def solve_once(wf, workers, **overrides):
    kwargs = dict(seed=7, num_samples=100, max_evaluations=250)
    kwargs.update(overrides)
    with warnings.catch_warnings():
        # This host may have fewer cores than shards; the advisory
        # oversubscription warning is irrelevant to identity.
        warnings.simplefilter("ignore", RuntimeWarning)
        with Deco(CATALOG, workers=workers, **kwargs) as deco:
            plan = deco.schedule(wf, "medium")
            result = deco.last_result
    return plan.decision_dict(), result


class TestBitIdentityAcrossWorkers:
    """workers x incremental matrix on Montage-1: plans and trajectories."""

    @pytest.fixture(scope="class")
    def wf(self):
        return montage(degrees=1, seed=2)

    @pytest.mark.parametrize("incremental", [True, False])
    def test_plans_and_trajectories_match_serial(self, wf, incremental):
        reference, ref_result = solve_once(wf, 1, incremental=incremental)
        for workers in (2, 4):
            decisions, result = solve_once(wf, workers, incremental=incremental)
            assert decisions == reference, f"plan diverged at workers={workers}"
            assert result.workers == workers
            for name in TRAJECTORY_COUNTERS:
                assert getattr(result, name) == getattr(ref_result, name), (
                    f"{name} diverged at workers={workers}"
                )

    def test_sharded_solve_reports_shard_cache_work(self, wf):
        _, serial = solve_once(wf, 1)
        _, sharded = solve_once(wf, 2)
        # The shard-resident caches report their misses back to the
        # parent: total makespan rows computed match the serial solve.
        assert sharded.cache_hits + sharded.cache_misses > 0
        assert sharded.cache_misses == serial.cache_misses

    def test_speculation_counters_populated(self, wf):
        _, result = solve_once(wf, 2)
        assert result.speculated > 0
        assert 0 <= result.speculation_hits <= result.speculated
        _, serial = solve_once(wf, 1)
        assert serial.speculated == 0  # serial path never speculates


class TestBitIdentityAnalyticTier:
    """Montage-8 activates tier 0; the sharded cascade must not drift."""

    def test_analytic_screen_on_and_off(self):
        wf = montage(degrees=8.0, seed=0)
        for screen in (True, False):
            reference, ref_result = solve_once(
                wf, 1, num_samples=40, max_evaluations=400, analytic_screen=screen
            )
            decisions, result = solve_once(
                wf, 2, num_samples=40, max_evaluations=400, analytic_screen=screen
            )
            assert decisions == reference, f"plan diverged (analytic_screen={screen})"
            assert result.analytic_evals == ref_result.analytic_evals
            if screen:
                assert result.analytic_evals > 0  # the tier ran, sharded
            else:
                assert result.analytic_evals == 0


class TestShardCrashDuringSolve:
    def test_killed_shard_recovers_with_identical_plan(self):
        wf = montage(degrees=1, seed=2)
        reference, _ = solve_once(wf, 1, num_samples=60, max_evaluations=120)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            deco = Deco(CATALOG, workers=2, seed=7, num_samples=60, max_evaluations=120)
            try:
                deco.schedule(wf, "medium")  # spin up + warm the shards
                for executor in deco._shard_pool._executors:
                    if executor is not None:
                        for proc in executor._processes.values():
                            proc.kill()
                with pytest.warns(RuntimeWarning, match="beam shard"):
                    plan = deco.schedule(wf, "medium")
            finally:
                deco.close()
        assert plan.decision_dict() == reference


class TestRepeatedShardFailures:
    """Repeated worker loss within a single solve (service robustness).

    Each SIGKILL is one *incident*: exactly one ``beam shard`` warning,
    a serial re-run of only that shard's chunk, and a lazy respawn on
    the shard's next job -- so the plan stays bit-identical to the
    serial solve no matter how many times, or how close together,
    shards die.
    """

    KW = dict(num_samples=60, max_evaluations=120)

    def _solve_with_kills(self, wf, kill_plan):
        """Solve on 2 shards, SIGKILLing workers per ``kill_plan``.

        ``kill_plan`` maps an eval-round ordinal (1-based) to the shard
        indices whose worker is killed immediately before that round's
        dispatch.  Returns (decision_dict, rounds_seen, shard_warnings).
        """
        rounds = {"n": 0}
        original = ShardedEvaluator.submit_eval

        def sabotaged(evaluator, states, parents, incremental):
            rounds["n"] += 1
            for shard in kill_plan.get(rounds["n"], ()):
                pid = evaluator.pool.worker_pids()[shard]
                if pid is None:
                    # Shard died earlier and respawn is lazy; force the
                    # respawn (prologue replay included) so this kill
                    # hits a live worker -- the repeated-failure case.
                    evaluator.pool._spawn(shard)
                    pid = evaluator.pool.worker_pids()[shard]
                assert pid is not None, f"shard {shard} has no live worker to kill"
                os.kill(pid, signal.SIGKILL)
            return original(evaluator, states, parents, incremental)

        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            ShardedEvaluator.submit_eval = sabotaged
            try:
                with Deco(CATALOG, workers=2, seed=7, **self.KW) as deco:
                    plan = deco.schedule(wf, "medium")
            finally:
                ShardedEvaluator.submit_eval = original
        incidents = [w for w in captured if "beam shard" in str(w.message)]
        return plan.decision_dict(), rounds["n"], incidents

    @pytest.fixture(scope="class")
    def wf(self):
        return montage(degrees=1, seed=2)

    @pytest.fixture(scope="class")
    def reference(self, wf):
        decisions, _ = solve_once(wf, 1, **self.KW)
        return decisions

    def test_same_shard_killed_twice_in_one_solve(self, wf, reference):
        decisions, rounds, incidents = self._solve_with_kills(wf, {2: [0], 3: [0]})
        assert rounds >= 3, "solve finished before both kills landed"
        assert decisions == reference
        # One warning per incident: the second kill (of the respawned
        # worker) must be reported as its own event, not coalesced.
        assert len(incidents) == 2, [str(w.message) for w in incidents]

    def test_two_shards_killed_in_one_beam_iteration(self, wf, reference):
        decisions, rounds, incidents = self._solve_with_kills(wf, {2: [0, 1]})
        assert rounds >= 2
        assert decisions == reference
        assert len(incidents) == 2, [str(w.message) for w in incidents]


def solve_with_stats(wf, workers, **overrides):
    kwargs = dict(seed=7, num_samples=100, max_evaluations=250)
    kwargs.update(overrides)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with Deco(CATALOG, workers=workers, **kwargs) as deco:
            plan = deco.schedule(wf, "medium")
            stats = deco.cache_stats().get("distributed", {})
    return plan.decision_dict(), stats


class TestArenaBitIdentity:
    """arena x workers x incremental: the transport may not move the plan."""

    KW = dict(num_samples=60, max_evaluations=120)

    @pytest.fixture(scope="class")
    def wf(self):
        return montage(degrees=1, seed=2)

    @pytest.mark.parametrize("incremental", [True, False])
    def test_matrix_matches_serial(self, wf, incremental):
        reference, _ = solve_once(wf, 1, incremental=incremental, **self.KW)
        for use_arena in (True, False):
            for workers in (2, 4):
                decisions, _ = solve_once(
                    wf, workers, incremental=incremental, arena=use_arena, **self.KW
                )
                assert decisions == reference, (
                    f"plan diverged (arena={use_arena}, workers={workers})"
                )

    def test_arena_shrinks_the_broadcast(self, wf):
        from repro.parallel.arena import arena_available

        if not arena_available():
            pytest.skip("POSIX shared memory unavailable in this sandbox")
        _, arena_stats = solve_with_stats(wf, 2, **self.KW)
        assert arena_stats["arena_enabled"] is True
        assert arena_stats["arena_publishes"] >= 1
        assert arena_stats["broadcast_bytes"] > 0
        _, pickled_stats = solve_with_stats(wf, 2, arena=False, **self.KW)
        # The arena broadcast ships a content key plus scalar deltas;
        # the pickled prologue ships the whole compiled problem.
        assert arena_stats["broadcast_bytes"] < pickled_stats["broadcast_bytes"]

    def test_counters_exposed_via_cache_stats(self, wf):
        _, stats = solve_with_stats(wf, 2, **self.KW)
        for key in (
            "workers",
            "solves",
            "arena_enabled",
            "adaptive_sharding",
            "broadcasts",
            "broadcast_skipped",
            "broadcast_bytes",
            "prologue_replays",
        ):
            assert key in stats, key

    def test_repeat_solve_skips_rebroadcast(self, wf):
        from repro.parallel.arena import arena_available

        if not arena_available():
            pytest.skip("POSIX shared memory unavailable in this sandbox")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with Deco(CATALOG, workers=2, seed=7, **self.KW) as deco:
                first = deco.schedule(wf, "medium").decision_dict()
                second = deco.schedule(wf, "medium").decision_dict()
                stats = deco.cache_stats()["distributed"]
        assert first == second
        # Same problem, same deadline: the second begin-solve matches the
        # recorded stamp and is skipped before any serialization.
        assert stats["broadcast_skipped"] >= 1
        assert stats["arena_hits"] >= 1


class TestArenaWorkerKillReattach:
    """A respawned worker re-attaches the shared segment without leaks."""

    KW = dict(num_samples=60, max_evaluations=120)

    def test_sigkilled_worker_reattaches_cleanly(self):
        from repro.parallel.arena import arena_available

        if not arena_available():
            pytest.skip("POSIX shared memory unavailable in this sandbox")
        wf = montage(degrees=1, seed=2)
        reference, _ = solve_once(wf, 1, **self.KW)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            # Any shm handle dropped without close() in this process
            # becomes a hard failure, not console noise.
            warnings.simplefilter("error", ResourceWarning)
            deco = Deco(CATALOG, workers=2, seed=7, **self.KW)
            try:
                deco.schedule(wf, "medium")  # spin up, publish, attach
                for executor in deco._shard_pool._executors:
                    if executor is not None:
                        for proc in executor._processes.values():
                            proc.kill()
                with pytest.warns(RuntimeWarning, match="beam shard"):
                    plan = deco.schedule(wf, "medium")
                stats = deco.cache_stats()["distributed"]
            finally:
                deco.close()
        assert plan.decision_dict() == reference
        # The replacement workers replayed the arena prologue (attach by
        # content key), not a re-pickled problem.
        assert stats["prologue_replays"] >= 1
        assert stats["arena_publishes"] == 1


class TestAdaptiveShardingIdentity:
    """Weighted partitions + stealing only move where chunks run."""

    KW = dict(num_samples=60, max_evaluations=120)

    def test_weighted_and_even_partitions_agree(self):
        wf = montage(degrees=1, seed=2)
        plans: dict[str, list] = {}
        for label, flag in (("adaptive", True), ("even", False)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with Deco(
                    CATALOG, workers=2, seed=7, adaptive_sharding=flag, **self.KW
                ) as deco:
                    # The first solve trains the cost EWMAs; the second
                    # runs weighted (adaptive engine) vs even (control).
                    plans[label] = [
                        deco.schedule(wf, "medium").decision_dict() for _ in range(2)
                    ]
        assert plans["adaptive"] == plans["even"]


class TestShardCostModel:
    def test_abstains_before_data(self):
        model = ShardCostModel()
        assert model.weights("wf", "eval", 2) is None
        assert model.observations == 0

    def test_weights_favor_faster_shard(self):
        model = ShardCostModel(alpha=1.0)
        model.observe("wf", "eval", 0, candidates=10, elapsed_us=1000)  # 100 us/cand
        model.observe("wf", "eval", 1, candidates=10, elapsed_us=4000)  # 400 us/cand
        w = model.weights("wf", "eval", 2)
        assert w is not None
        assert w[0] == pytest.approx(4.0 * w[1])

    def test_unseen_shard_gets_mean_cost(self):
        model = ShardCostModel()
        model.observe("wf", "eval", 0, candidates=10, elapsed_us=1000)
        w = model.weights("wf", "eval", 3)
        assert len(w) == 3
        assert w[1] == w[2] == pytest.approx(1.0 / 100.0)

    def test_ewma_blends_repeat_observations(self):
        model = ShardCostModel(alpha=0.5)
        model.observe("wf", "eval", 0, candidates=1, elapsed_us=100)
        model.observe("wf", "eval", 0, candidates=1, elapsed_us=200)
        w = model.weights("wf", "eval", 1)
        assert w[0] == pytest.approx(1.0 / 150.0)

    def test_ignores_degenerate_observations(self):
        model = ShardCostModel()
        model.observe("wf", "eval", 0, candidates=0, elapsed_us=100)
        model.observe("wf", "eval", 0, candidates=10, elapsed_us=0)
        model.observe("wf", "eval", -1, candidates=10, elapsed_us=100)
        assert model.observations == 0
        assert model.weights("wf", "eval", 2) is None

    def test_tiers_are_independent(self):
        model = ShardCostModel()
        model.observe("wf", "screen", 0, candidates=100, elapsed_us=500)
        assert model.weights("wf", "eval", 2) is None
        assert model.weights("wf", "screen", 2) is not None

    def test_snapshot_restore_roundtrip(self):
        model = ShardCostModel()
        model.observe("wf", "eval", 1, candidates=10, elapsed_us=3000)
        model.observe("wf", "screen", 0, candidates=100, elapsed_us=500)
        clone = ShardCostModel()
        clone.restore(model.snapshot())
        assert clone.weights("wf", "eval", 3) == model.weights("wf", "eval", 3)
        assert clone.weights("wf", "screen", 2) == model.weights("wf", "screen", 2)

    def test_lru_evicts_oldest_workflow(self):
        model = ShardCostModel(max_workflows=2)
        for i in range(3):
            model.observe(f"wf{i}", "eval", 0, candidates=1, elapsed_us=100)
        assert model.weights("wf0", "eval", 1) is None
        assert model.weights("wf2", "eval", 1) is not None

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            ShardCostModel(alpha=0.0)
        with pytest.raises(ValueError):
            ShardCostModel(alpha=1.5)


def compile_small(num_samples=48, seed=3):
    wf = montage(degrees=1, seed=2)
    fast = sum(MODEL.mean(wf.task(t), "m1.xlarge") for t in wf.task_ids)
    slow = sum(MODEL.mean(wf.task(t), "m1.small") for t in wf.task_ids)
    return CompiledProblem.compile(
        wf, CATALOG, deadline=0.5 * (fast + slow), percentile=90.0,
        num_samples=num_samples, seed=seed, runtime_model=MODEL,
    )


PROBLEM = compile_small()
BATCH = [
    PlanState(np.random.default_rng(i).integers(0, PROBLEM.num_types, PROBLEM.num_tasks))
    for i in range(12)
]


@given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=20, deadline=None)
def test_partitioned_evaluation_matches_whole_batch(chunks, salt):
    """The sharding lemma: evaluating any chunking of a candidate batch
    on *fresh* backends (one per shard) and concatenating reproduces the
    whole-batch evaluation exactly -- per-state kernel values are
    independent of batch composition and cache temperature."""
    rng = random.Random(salt)
    batch = list(BATCH)
    rng.shuffle(batch)
    whole = VectorizedBackend().evaluate_batch(PROBLEM, batch)
    pieces = []
    for chunk in chunk_evenly(batch, chunks):
        pieces.extend(VectorizedBackend().evaluate_batch(PROBLEM, chunk))
    assert pieces == whole


def test_frontier_merge_deterministic_in_partition():
    """Concatenating per-chunk evaluations in shard order, for any shard
    count, feeds the parent the same (state, eval) pairs -- so the merge
    is a function of the candidate set, not of the partition."""
    evals = {s.key: e for s, e in zip(BATCH, VectorizedBackend().evaluate_batch(PROBLEM, BATCH))}
    reference = None
    for chunks in (1, 2, 3, 5, 12):
        merged = []
        for chunk in chunk_evenly(BATCH, chunks):
            merged.extend((s, evals[s.key]) for s in chunk)
        ranked = sorted(merged, key=GenericSearch._frontier_key)
        if reference is None:
            reference = ranked
        assert ranked == reference


class TestFrontierTieBreak:
    def test_tied_priorities_sort_by_state_key(self):
        """Regression (satellite 2): entries with byte-equal priorities
        used to keep insertion order; the ranking must instead be a pure
        function of the frontier set."""
        tie = StateEval(cost=10.0, probability=0.97, feasible=True, mean_makespan=50.0)
        states = [PlanState(np.full(4, t, dtype=np.int64)) for t in range(6)]
        entries = [(s, tie) for s in states]
        rng = random.Random(0)
        orders = []
        for _ in range(5):
            shuffled = list(entries)
            rng.shuffle(shuffled)
            orders.append(sorted(shuffled, key=GenericSearch._frontier_key))
        assert all(order == orders[0] for order in orders)
        assert [s.key for s, _ in orders[0]] == sorted(s.key for s in states)

    def test_priority_still_dominates_key(self):
        cheap = StateEval(cost=1.0, probability=0.99, feasible=True, mean_makespan=10.0)
        dear = StateEval(cost=2.0, probability=0.99, feasible=True, mean_makespan=10.0)
        a = PlanState(np.full(4, 9, dtype=np.int64))   # big key bytes
        b = PlanState(np.zeros(4, dtype=np.int64))     # small key bytes
        ranked = sorted([(a, cheap), (b, dear)], key=GenericSearch._frontier_key)
        assert ranked[0][0] is a  # cheaper wins despite larger key
