"""Tests for the vectorized analytic (moment-propagation) backend.

Three layers: the Clark-max algebra itself, the propagated moments
against Monte Carlo ground truth (exact on chains, conservatively
biased at correlated joins), and the backend's integration surface --
the backend registry, ``Deco(backend="analytic")``, and the search's
tier-0 screening cascade (which must never change the winning plan).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.instance_types import ec2_catalog
from repro.common.errors import SolverError
from repro.engine.deco import Deco
from repro.solver.analytic import analytic_deadline_probability
from repro.solver.analytic_backend import AnalyticBackend, _clark_reduce, clark_max
from repro.solver.backends import CompiledProblem, VectorizedBackend, get_backend
from repro.solver.cache import ScratchPool
from repro.solver.state import PlanState
from repro.workflow.generators import montage, pipeline, random_dag
from repro.workflow.runtime_model import RuntimeModel

CATALOG = ec2_catalog()
MODEL = RuntimeModel(CATALOG)


def compile_wf(wf, num_samples=100, seed=0, deadline=1e9):
    return CompiledProblem.compile(
        wf, CATALOG, deadline=deadline, num_samples=num_samples, seed=seed,
        runtime_model=MODEL,
    )


def uniform_states(problem):
    return [PlanState.uniform(problem.num_tasks, t) for t in range(problem.num_types)]


class TestClarkMax:
    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(3)
        m1, v1, m2, v2 = 10.0, 4.0, 11.0, 9.0
        x1 = rng.normal(m1, np.sqrt(v1), 200_000)
        x2 = rng.normal(m2, np.sqrt(v2), 200_000)
        mx = np.maximum(x1, x2)
        mean, var = clark_max(
            np.array([m1]), np.array([v1]), np.array([m2]), np.array([v2])
        )
        assert mean[0] == pytest.approx(mx.mean(), rel=0.01)
        assert var[0] == pytest.approx(mx.var(), rel=0.03)

    def test_degenerate_operands_exact(self):
        # Deterministic inputs: max collapses to the larger mean, var 0.
        mean, var = clark_max(
            np.array([3.0, 7.0]), np.zeros(2), np.array([5.0, 2.0]), np.zeros(2)
        )
        np.testing.assert_allclose(mean, [5.0, 7.0])
        np.testing.assert_allclose(var, [0.0, 0.0], atol=1e-12)

    def test_reduce_matches_sequential(self):
        rng = np.random.default_rng(0)
        for n, p, b in [(3, 7, 5), (1, 402, 8), (2, 2, 3), (4, 1, 6)]:
            m = rng.normal(50, 10, (n, p, b))
            v = rng.uniform(0.01, 5.0, (n, p, b))
            # Reference: the same pairwise tournament, written with the
            # allocating clark_max.  The pooled in-place reduction must
            # reproduce it to rounding error (the sequential column walk
            # would NOT match -- Clark's surrogate is order-dependent).
            rm, rv = m.copy(), v.copy()
            while rm.shape[1] > 1:
                half = rm.shape[1] // 2
                mh, vh = clark_max(
                    rm[:, :half], rv[:, :half],
                    rm[:, half : 2 * half], rv[:, half : 2 * half],
                )
                if rm.shape[1] % 2:
                    rm = np.concatenate([mh, rm[:, -1:]], axis=1)
                    rv = np.concatenate([vh, rv[:, -1:]], axis=1)
                else:
                    rm, rv = mh, vh
            got_m, got_v = _clark_reduce(m.copy(), v.copy(), ScratchPool())
            np.testing.assert_allclose(got_m, rm[:, 0], rtol=1e-10)
            np.testing.assert_allclose(got_v, rv[:, 0], rtol=1e-8, atol=1e-10)


class TestMomentsVsMonteCarlo:
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=10, deadline=None)
    def test_exact_on_chains(self, n, seed):
        """No joins -> pure convolution: the mean is exact (within the
        quantile grid's discretization of the common sample tensor)."""
        wf = pipeline(n, seed=seed, runtime=600.0, data_mb=1500.0)
        problem = compile_wf(wf, num_samples=60, seed=seed)
        states = uniform_states(problem)
        a_mean, a_var = AnalyticBackend().makespan_moments(problem, states)
        rows = VectorizedBackend().makespan_samples(problem, states)
        np.testing.assert_allclose(a_mean, rows.mean(axis=1), rtol=0.01)
        assert np.all(a_var >= 0.0)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_conservative_at_correlated_joins(self, seed):
        """Shared ancestors correlate joining paths positively; treating
        them as independent overestimates E[max], so the analytic mean
        sits at or above Monte Carlo (never meaningfully below)."""
        wf = random_dag(10, edge_prob=0.4, seed=seed)
        problem = compile_wf(wf, num_samples=150, seed=seed)
        states = uniform_states(problem)
        a_mean, _ = AnalyticBackend().makespan_moments(problem, states)
        mc_mean = VectorizedBackend().makespan_samples(problem, states).mean(axis=1)
        assert np.all(a_mean >= mc_mean * (1.0 - 0.01))

    @pytest.mark.parametrize("degrees", [1.0, 4.0])
    def test_cross_check_histogram_path(self, degrees):
        """Both analytic paths -- per-task histogram algebra and the
        vectorized moment propagation -- agree on Montage deadline
        probabilities to within their shared approximation error."""
        wf = montage(degrees=degrees, seed=0)
        assign = {t: "m1.xlarge" for t in wf.task_ids}
        from repro.solver.analytic import analytic_makespan

        h = analytic_makespan(wf, assign, MODEL, max_bins=48)
        for q in (50.0, 90.0):
            d = h.percentile(q)
            problem = compile_wf(wf, num_samples=100, seed=0, deadline=d)
            p_vec = float(
                AnalyticBackend().deadline_probabilities(
                    problem, [problem.state_from_assignment(assign)]
                )[0]
            )
            p_hist = analytic_deadline_probability(wf, assign, MODEL, d, max_bins=48)
            assert abs(p_vec - p_hist) <= 0.15

    def test_cross_check_montage8_vs_monte_carlo(self):
        """Montage-8 referee check: the histogram path needs minutes at
        680 tasks (why this backend exists), so the largest workflow is
        cross-checked against full Monte Carlo instead."""
        wf = montage(degrees=8.0, seed=0)
        assign = {t: "m1.xlarge" for t in wf.task_ids}
        problem = compile_wf(wf, num_samples=150, seed=0)
        state = problem.state_from_assignment(assign)
        rows = VectorizedBackend().makespan_samples(problem, [state])
        for q in (50.0, 90.0):
            d = float(np.percentile(rows[0], q))
            p_vec = float(
                AnalyticBackend().deadline_probabilities(
                    problem.with_deadline(d), [state]
                )[0]
            )
            assert abs(p_vec - q / 100.0) <= 0.15


class TestBackendInterface:
    def test_registry(self):
        assert get_backend("analytic").name == "analytic"
        assert isinstance(get_backend("analytic"), AnalyticBackend)

    def test_quantile_grid_shape_and_monotonicity(self):
        wf = montage(degrees=1.0, seed=0)
        problem = compile_wf(wf, num_samples=60)
        backend = AnalyticBackend(quantile_points=16)
        rows = backend.makespan_samples(problem, uniform_states(problem))
        assert rows.shape == (problem.num_types, 16)
        assert np.all(np.diff(rows, axis=1) >= 0.0)

    def test_evaluate_batch_source_and_cost(self):
        wf = montage(degrees=1.0, seed=0)
        problem = compile_wf(wf, num_samples=60)
        states = uniform_states(problem)
        evals = AnalyticBackend().evaluate_batch(problem, states)
        costs = problem.expected_cost_batch(
            np.stack([s.assignment for s in states])
        )
        for ev, cost in zip(evals, costs):
            assert ev.source == "analytic"
            assert ev.cost == pytest.approx(float(cost))
            assert 0.0 <= ev.probability <= 1.0

    def test_empty_and_counters(self):
        wf = montage(degrees=1.0, seed=0)
        problem = compile_wf(wf, num_samples=60)
        backend = AnalyticBackend()
        assert backend.evaluate_batch(problem, []) == []
        backend.makespan_moments(problem, uniform_states(problem))
        stats = backend.analytic_stats()
        assert stats["states_analytic"] == problem.num_types
        assert stats["calibrations"] == 1

    def test_calibration_lru_eviction(self):
        backend = AnalyticBackend(max_calibrations=1)
        p1 = compile_wf(montage(degrees=1.0, seed=0), num_samples=40, seed=0)
        p2 = compile_wf(montage(degrees=1.0, seed=1), num_samples=40, seed=1)
        backend.makespan_moments(p1, uniform_states(p1))
        backend.makespan_moments(p2, uniform_states(p2))
        backend.makespan_moments(p1, uniform_states(p1))  # recalibrates
        assert backend.analytic_stats()["calibrations"] == 3

    def test_constructor_validation(self):
        with pytest.raises(SolverError):
            AnalyticBackend(quantile_points=3)
        with pytest.raises(SolverError):
            AnalyticBackend(max_calibrations=0)


class TestDecoAnalytic:
    def test_standalone_schedule(self):
        deco = Deco(CATALOG, backend="analytic", num_samples=40, max_evaluations=200)
        wf = montage(degrees=1.0, seed=0)
        plan = deco.schedule(wf, "medium")
        assert deco.backend.name == "analytic"
        assert plan.assignment  # produced a full plan
        assert deco.cache_stats()["analytic"]["states_analytic"] > 0

    def test_cascade_identity_montage8(self):
        """Tier 0 on vs off must pick byte-identical plans: the cascade
        settles states analytically but never changes the winner."""
        wf = montage(degrees=8.0, seed=0)
        plans = {}
        counters = {}
        for screen in (True, False):
            deco = Deco(
                CATALOG, num_samples=40, max_evaluations=400,
                analytic_screen=screen,
            )
            plan = deco.schedule(wf, "medium")
            plans[screen] = plan.decision_dict()
            counters[screen] = deco.last_result.analytic_evals
        assert plans[True] == plans[False]
        assert counters[True] > 0  # the tier actually ran on 680 tasks
        assert counters[False] == 0

    def test_size_gate_keeps_tier_off_small(self):
        """Below analytic_min_tasks the delta-MC path is already cheap;
        the tier must not run (measured net-negative on montage-1/4)."""
        wf = montage(degrees=1.0, seed=0)
        deco = Deco(CATALOG, num_samples=40, max_evaluations=200)
        deco.schedule(wf, "medium")
        assert deco.last_result.analytic_evals == 0
