"""Tests for the makespan memoization cache."""

import numpy as np
import pytest

from repro.common.errors import SolverError
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.solver.cache import MakespanCache
from repro.solver.state import PlanState
from repro.workflow.generators import montage, random_dag


@pytest.fixture(scope="module")
def problem(catalog, runtime_model):
    wf = montage(degrees=1, seed=2)
    return CompiledProblem.compile(
        wf, catalog, deadline=2000.0, percentile=96.0, num_samples=32,
        seed=5, runtime_model=runtime_model,
    )


class TestCacheMechanics:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(SolverError):
            MakespanCache(max_entries=0)

    def test_miss_then_hit(self, problem):
        cache = MakespanCache()
        backend = VectorizedBackend(cache=cache)
        states = [PlanState.uniform(problem.num_tasks, t) for t in range(3)]

        first = backend.cached_makespan_samples(problem, states)
        assert cache.counters() == {"hits": 0, "misses": 3, "entries": 3}

        second = backend.cached_makespan_samples(problem, states)
        assert cache.hits == 3 and cache.misses == 3
        np.testing.assert_array_equal(first, second)

    def test_partial_hit_assembles_in_order(self, problem):
        cache = MakespanCache()
        backend = VectorizedBackend(cache=cache)
        a, b, c = (PlanState.uniform(problem.num_tasks, t) for t in range(3))
        backend.cached_makespan_samples(problem, [a, c])
        mixed = backend.cached_makespan_samples(problem, [c, b, a])
        assert cache.hits == 2 and cache.misses == 3
        cold = VectorizedBackend().makespan_samples(problem, [c, b, a])
        np.testing.assert_array_equal(mixed, cold)

    def test_lru_eviction(self, problem):
        cache = MakespanCache(max_entries=2)
        backend = VectorizedBackend(cache=cache)
        states = [PlanState.uniform(problem.num_tasks, t) for t in range(3)]
        for st in states:
            backend.cached_makespan_samples(problem, [st])
        assert len(cache) == 2
        # Oldest (states[0]) was evicted; re-fetch misses again.
        backend.cached_makespan_samples(problem, [states[0]])
        assert cache.misses == 4

    def test_rows_are_copies_not_views(self, problem):
        """Cached rows must not alias backend scratch buffers."""
        cache = MakespanCache()
        backend = VectorizedBackend(cache=cache)
        st = PlanState.uniform(problem.num_tasks, 0)
        row = backend.cached_makespan_samples(problem, [st])[0].copy()
        # Evaluate something else through the same backend (reuses pool).
        other = PlanState.uniform(problem.num_tasks, problem.num_types - 1)
        backend.cached_makespan_samples(problem, [other])
        np.testing.assert_array_equal(
            backend.cached_makespan_samples(problem, [st])[0], row
        )

    def test_clear_resets_entries_not_counters(self, problem):
        cache = MakespanCache()
        backend = VectorizedBackend(cache=cache)
        backend.cached_makespan_samples(
            problem, [PlanState.uniform(problem.num_tasks, 0)]
        )
        cache.clear()
        assert len(cache) == 0 and cache.misses == 1


class TestWithDeadlineReuse:
    """The point of the cache: ``with_deadline`` sweeps reuse samples."""

    def test_derived_problem_hits(self, problem):
        cache = MakespanCache()
        backend = VectorizedBackend(cache=cache)
        states = [PlanState.uniform(problem.num_tasks, t) for t in range(4)]
        backend.cached_makespan_samples(problem, states)
        derived = problem.with_deadline(123.0, percentile=80.0)
        backend.cached_makespan_samples(derived, states)
        assert cache.hits == 4 and cache.misses == 4

    @pytest.mark.parametrize("seed", range(3))
    def test_cached_evals_match_cold_evals(self, catalog, runtime_model, seed):
        """StateEvals through the warm cache == cold-backend StateEvals."""
        wf = random_dag(18, edge_prob=0.25, seed=seed)
        problem = CompiledProblem.compile(
            wf, catalog, deadline=3e3, percentile=92.0, num_samples=16,
            seed=seed, runtime_model=runtime_model,
        )
        rng = np.random.default_rng(seed)
        states = [PlanState(rng.integers(0, problem.num_types, 18)) for _ in range(6)]

        warm = VectorizedBackend(cache=MakespanCache())
        warm.evaluate_batch(problem, states)  # populate
        derived = problem.with_deadline(1.5e3, percentile=96.0)
        cached_evals = warm.evaluate_batch(derived, states)
        cold_evals = VectorizedBackend().evaluate_batch(derived, states)
        assert warm.cache.hits >= len(states)
        for got, want in zip(cached_evals, cold_evals):
            assert got == want

    def test_different_tensor_does_not_hit(self, catalog, runtime_model, problem):
        other = CompiledProblem.compile(
            problem.workflow, catalog, deadline=2000.0, percentile=96.0,
            num_samples=32, seed=6, runtime_model=runtime_model,
        )
        cache = MakespanCache()
        backend = VectorizedBackend(cache=cache)
        st = PlanState.uniform(problem.num_tasks, 0)
        backend.cached_makespan_samples(problem, [st])
        backend.cached_makespan_samples(other, [st])
        assert cache.hits == 0 and cache.misses == 2
