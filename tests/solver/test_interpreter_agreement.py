"""Cross-check: the compiled array evaluation vs the WLog interpreter.

The vectorized backend claims to compute exactly what Algorithm 1
computes over the probabilistic IR of Example 1.  These tests pin that
equivalence on a small pipeline workflow:

* **goal values**: the compiled Eq.-1 cost must match the interpreter's
  deterministic-mode ``totalcost`` query (same histogram means);
* **constraint probabilities**: the compiled Monte Carlo estimate of
  P(makespan <= D) must agree with the interpreter's estimate within
  Monte Carlo error.
"""

import pytest

from repro.engine.compiler import try_compile
from repro.solver.backends import VectorizedBackend
from repro.wlog.imports import ImportRegistry, vm_atom
from repro.wlog.library import scheduling_program
from repro.wlog.probir import translate
from repro.wlog.program import WLogProgram
from repro.wlog.terms import Atom, Num, Rule, Struct
from repro.workflow.generators import pipeline
from repro.workflow.runtime_model import RuntimeModel


@pytest.fixture(scope="module")
def env(catalog):
    wf = pipeline(num_tasks=4, runtime=600.0, data_mb=2000.0, seed=3)
    reg = ImportRegistry()
    reg.register_cloud("amazonec2", catalog)
    reg.register_workflow("montage", wf)
    return wf, reg


def configs_rules(wf, type_name):
    return tuple(
        Rule(Struct("configs", (Atom(tid), vm_atom(type_name), Num(1.0))))
        for tid in wf.task_ids
    )


@pytest.mark.parametrize("type_name", ["m1.small", "m1.medium", "m1.xlarge"])
def test_goal_values_agree(env, type_name, catalog):
    wf, reg = env
    src = scheduling_program(percentile=90, deadline_seconds=1e9)
    program = WLogProgram.from_source(src)
    ir = translate(program, reg, deterministic=True)
    interp = ir.evaluate(configs_rules(wf, type_name), max_iter=1)

    problem = try_compile(translate(program, reg), num_samples=16, seed=0)
    assert problem is not None
    ev = VectorizedBackend().evaluate(
        problem, problem.state_from_assignment({t: type_name for t in wf.task_ids})
    )
    # Interpreter uses histogram means; compiled path uses analytic means.
    assert ev.cost == pytest.approx(interp.goal_value, rel=0.05)


def test_constraint_probability_agrees(env):
    wf, reg = env
    model = RuntimeModel(reg.materialize(("amazonec2",)).catalog)  # just for means
    serial = sum(model.mean(wf.task(t), "m1.medium") for t in wf.task_ids)
    src = scheduling_program(percentile=96, deadline_seconds=serial)
    program = WLogProgram.from_source(src)

    interp = translate(program, reg).evaluate(
        configs_rules(wf, "m1.medium"), max_iter=300, seed=11
    )
    problem = try_compile(translate(program, reg), num_samples=3000, seed=12)
    ev = VectorizedBackend().evaluate(
        problem, problem.state_from_assignment({t: "m1.medium" for t in wf.task_ids})
    )
    # A mean-centered deadline on a near-symmetric sum: both estimators
    # must land near 0.5, well within joint Monte Carlo error.
    assert ev.probability == pytest.approx(interp.constraint_probabilities[0], abs=0.1)


def test_feasibility_decisions_agree_on_clear_cases(env):
    wf, reg = env
    model = RuntimeModel(reg.materialize(("amazonec2",)).catalog)
    serial = sum(model.mean(wf.task(t), "m1.small") for t in wf.task_ids)
    for factor, expect in ((2.0, True), (0.5, False)):
        src = scheduling_program(percentile=96, deadline_seconds=serial * factor)
        program = WLogProgram.from_source(src)
        interp = translate(program, reg).evaluate(
            configs_rules(wf, "m1.small"), max_iter=60, seed=4
        )
        problem = try_compile(translate(program, reg), num_samples=200, seed=4)
        ev = VectorizedBackend().evaluate(
            problem, problem.state_from_assignment({t: "m1.small" for t in wf.task_ids})
        )
        assert interp.feasible is expect
        assert ev.feasible is expect
