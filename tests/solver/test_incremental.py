"""Incremental Monte Carlo evaluation: bit-identity, caches, screening.

The contract under test (DESIGN.md §10): delta propagation from dirty
levels and two-stage sample-fidelity screening are *pure* evaluation
optimizations -- every makespan sample, every plan decision, and every
bench number is ``np.array_equal``-identical to the full pass.
"""

import numpy as np
import pytest

from repro.engine import Deco
from repro.parallel.workers import solve_plans
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.solver.cache import EvalContext, MakespanCache
from repro.solver.state import PlanState
from repro.workflow.generators import montage, random_dag

SAMPLES = 48


@pytest.fixture(scope="module")
def problem(catalog, runtime_model):
    wf = montage(degrees=1, seed=2)
    return CompiledProblem.compile(
        wf, catalog, deadline=4000.0, percentile=96.0, num_samples=SAMPLES,
        seed=5, runtime_model=runtime_model,
    )


def incremental_backend() -> VectorizedBackend:
    return VectorizedBackend(eval_context=EvalContext())


# Sample-token generation semantics ----------------------------------------


class TestSampleTokens:
    def test_fresh_compiles_get_distinct_tokens(self, catalog, runtime_model):
        wf = montage(degrees=1, seed=2)
        kwargs = dict(
            deadline=4000.0, percentile=96.0, num_samples=8, seed=5,
            runtime_model=runtime_model,
        )
        a = CompiledProblem.compile(wf, catalog, **kwargs)
        b = CompiledProblem.compile(wf, catalog, **kwargs)
        assert a.sample_token != b.sample_token

    def test_with_deadline_shares_the_tensor_and_token(self, problem):
        derived = problem.with_deadline(123.0)
        assert derived.sample_token == problem.sample_token
        assert derived.tensor is problem.tensor

    def test_tensor_rewrites_take_fresh_tokens(self, problem):
        prefix = problem.with_sample_prefix(16)
        assert prefix.sample_token != problem.sample_token
        assert prefix.num_samples == 16
        from repro.faults import FaultModel

        faulty = problem.with_faults(FaultModel(task_failure_rate=0.1))
        assert faulty.sample_token != problem.sample_token

    def test_prefix_is_a_strict_slice(self, problem):
        prefix = problem.with_sample_prefix(16)
        np.testing.assert_array_equal(prefix.tensor, problem.tensor[:, :16, :])


# EvalContext mechanics ----------------------------------------------------


class TestEvalContext:
    def test_get_put_peek_counters(self):
        ctx = EvalContext()
        frontier = np.arange(6.0).reshape(3, 2)
        assert ctx.get(1, b"k") is None
        assert not ctx.peek(1, b"k")
        ctx.put(1, b"k", frontier)
        assert ctx.peek(1, b"k")
        got = ctx.get(1, b"k")
        np.testing.assert_array_equal(got, frontier)
        assert not got.flags.writeable
        assert ctx.counters() == {"hits": 1, "misses": 1, "entries": 1}
        assert ctx.nbytes() == frontier.nbytes

    def test_lru_eviction(self):
        ctx = EvalContext(max_entries=2)
        for i in range(3):
            ctx.put(0, bytes([i]), np.zeros(1))
        assert not ctx.peek(0, b"\x00")  # oldest evicted
        assert ctx.peek(0, b"\x01") and ctx.peek(0, b"\x02")

    def test_invalid_capacity_rejected(self):
        from repro.common.errors import SolverError

        with pytest.raises(SolverError):
            EvalContext(max_entries=0)

    def test_screen_problem_is_memoized_per_token(self, problem):
        ctx = EvalContext()
        first = ctx.screen_problem(problem, 16)
        assert ctx.screen_problem(problem, 16) is first
        # A different prefix rebuilds the derivation.
        assert ctx.screen_problem(problem, 8) is not first
        # Screening rows must never mix with full-fidelity entries.
        assert first.sample_token != problem.sample_token

    def test_clear_drops_frontiers_and_screen_memo(self, problem):
        ctx = EvalContext()
        ctx.put(1, b"k", np.zeros((2, 2)))
        ctx.screen_problem(problem, 16)
        ctx.clear()
        assert len(ctx) == 0
        assert ctx.screen_problem(problem, 16).num_samples == 16


# Delta propagation bit-identity -------------------------------------------


def spread_children(problem, parent, batch=12):
    """Single-task edits spread across the DAG, alternating direction."""
    n = len(parent)
    children = []
    stride = max(1, n // batch)
    for j, i in enumerate(range(0, n, stride)):
        child = parent.promote(i, problem.num_types) if j % 2 else parent.demote(i)
        if child is not None:
            children.append(child)
        if len(children) == batch:
            break
    return children


class TestDeltaBitIdentity:
    @pytest.mark.parametrize("degrees", [1, 4, 8])
    @pytest.mark.parametrize("seed", [5, 21])
    def test_group_delta_equals_full_kernel(self, catalog, runtime_model, degrees, seed):
        wf = montage(degrees=degrees, seed=seed)
        problem = CompiledProblem.compile(
            wf, catalog, deadline=1e9, percentile=96.0, num_samples=SAMPLES,
            seed=seed, runtime_model=runtime_model,
        )
        parent = PlanState.uniform(len(wf), 1)
        children = spread_children(problem, parent)
        backend = incremental_backend()
        backend.ensure_frontier(problem, parent)
        inc = backend.makespan_samples(problem, children)
        ref = VectorizedBackend().makespan_samples(problem, children)
        np.testing.assert_array_equal(inc, ref)
        stats = backend.delta_stats()
        assert stats["states_incremental"] == len(children)
        assert stats["rows_recomputed"] < stats["rows_total"]

    def test_single_child_and_chained_frontiers(self, problem):
        backend = incremental_backend()
        parent = PlanState.uniform(problem.num_tasks, 1)
        backend.ensure_frontier(problem, parent)
        child = parent.promote(3, problem.num_types)
        # ensure_frontier on the child derives its frontier from the
        # parent's via the single-state delta path...
        backend.ensure_frontier(problem, child)
        grand = child.demote(0)
        inc = backend.makespan_samples(problem, [grand])
        ref = VectorizedBackend().makespan_samples(problem, [grand])
        np.testing.assert_array_equal(inc, ref)

    def test_multi_dirty_states(self, problem):
        backend = incremental_backend()
        parent = PlanState.uniform(problem.num_tasks, 1)
        backend.ensure_frontier(problem, parent)
        arr = parent.assignment.copy()
        arr[[0, 7, 19]] = [2, 0, 3]
        child = PlanState(arr, parent_key=parent.key, dirty=(0, 7, 19))
        inc = backend.makespan_samples(problem, [child])
        ref = VectorizedBackend().makespan_samples(problem, [child])
        np.testing.assert_array_equal(inc, ref)

    def test_mixed_batch_orphans_fall_back_to_full(self, problem):
        backend = incremental_backend()
        parent = PlanState.uniform(problem.num_tasks, 1)
        backend.ensure_frontier(problem, parent)
        with_lineage = parent.promote(2, problem.num_types)
        orphan = PlanState.uniform(problem.num_tasks, 2)  # no lineage
        stranger = PlanState.uniform(problem.num_tasks, 0).promote(
            1, problem.num_types
        )  # lineage, but its parent frontier is not cached
        batch = [with_lineage, orphan, stranger]
        inc = backend.makespan_samples(problem, batch)
        ref = VectorizedBackend().makespan_samples(problem, batch)
        np.testing.assert_array_equal(inc, ref)
        stats = backend.delta_stats()
        assert stats["states_incremental"] == 1
        assert stats["states_full"] == 2

    def test_incremental_flag_off_bypasses_delta(self, problem):
        backend = incremental_backend()
        parent = PlanState.uniform(problem.num_tasks, 1)
        backend.ensure_frontier(problem, parent)
        child = parent.promote(0, problem.num_types)
        backend.makespan_samples(problem, [child], incremental=False)
        assert backend.delta_stats()["states_incremental"] == 0

    @pytest.mark.parametrize("seed", [0, 13])
    def test_random_dags_roundtrip(self, catalog, runtime_model, seed):
        wf = random_dag(15, edge_prob=0.3, seed=seed)
        problem = CompiledProblem.compile(
            wf, catalog, deadline=1e9, percentile=96.0, num_samples=16,
            seed=seed, runtime_model=runtime_model,
        )
        parent = PlanState.uniform(len(wf), 1)
        backend = incremental_backend()
        backend.ensure_frontier(problem, parent)
        children = [
            c
            for i in range(len(wf))
            for c in [parent.promote(i, problem.num_types), parent.demote(i)]
            if c is not None
        ]
        inc = backend.makespan_samples(problem, children)
        ref = VectorizedBackend().makespan_samples(problem, children)
        np.testing.assert_array_equal(inc, ref)


# Two-stage screening ------------------------------------------------------


class TestScreening:
    def test_screen_probabilities_match_prefix_problem(self, problem):
        backend = incremental_backend()
        states = [PlanState.uniform(problem.num_tasks, t % 4) for t in range(6)]
        probs = backend.screen_probabilities(problem, states, prefix=16)
        prefix_problem = problem.with_sample_prefix(16)
        mk = VectorizedBackend().makespan_samples(prefix_problem, states)
        expected = (mk <= problem.deadline).mean(axis=1)
        np.testing.assert_allclose(probs, expected)

    def test_screening_rows_stay_out_of_the_caches(self, problem):
        cache = MakespanCache()
        ctx = EvalContext()
        backend = VectorizedBackend(cache=cache, eval_context=ctx)
        states = [PlanState.uniform(problem.num_tasks, 0)]
        backend.screen_probabilities(problem, states, prefix=16)
        assert len(cache) == 0
        assert len(ctx) == 0


# End-to-end search equivalence --------------------------------------------


SEARCH_CASES = [(1.0, 3), (1.0, 11), (4.0, 3), (4.0, 11), (8.0, 7)]


class TestSearchEquivalence:
    @pytest.mark.parametrize("degrees,seed", SEARCH_CASES)
    def test_plans_identical_with_engine_on_or_off(self, catalog, degrees, seed):
        wf = montage(degrees=degrees, seed=seed)
        kwargs = dict(seed=seed, num_samples=64, max_evaluations=200)
        plan_off = Deco(catalog, incremental=False, **kwargs).schedule(
            wf, "medium", deadline_percentile=96.0
        )
        deco_on = Deco(catalog, incremental=True, **kwargs)
        plan_on = deco_on.schedule(wf, "medium", deadline_percentile=96.0)
        assert plan_on.decision_dict() == plan_off.decision_dict()
        result = deco_on.last_result
        assert result is not None
        # Screened-out candidates still consume the evaluation budget.
        assert result.evaluations >= result.exact_evals
        assert result.screened_out >= 0

    @pytest.mark.parametrize("incremental", [False, True])
    def test_worker_fanout_identical(self, catalog, incremental):
        wf = montage(degrees=1.0, seed=7)
        deco = Deco(
            catalog, seed=7, num_samples=64, max_evaluations=150,
            incremental=incremental,
        )
        jobs = [(k, wf, "medium", 96.0) for k in range(2)]
        serial = solve_plans(deco, jobs, workers=1)
        fanned = solve_plans(deco, jobs, workers=2)
        for k in serial:
            assert serial[k].decision_dict() == fanned[k].decision_dict()


# Deco cache surface -------------------------------------------------------


class TestDecoCacheSurface:
    def test_cache_stats_and_clear(self, catalog):
        deco = Deco(catalog, seed=3, num_samples=32, max_evaluations=80)
        wf = montage(degrees=1.0, seed=3)
        deco.schedule(wf, "medium", deadline_percentile=96.0)
        stats = deco.cache_stats()
        assert stats["makespan"]["entries"] > 0
        assert stats["makespan"]["nbytes"] > 0
        assert stats["frontier"]["entries"] > 0
        assert stats["compiled_problems"] == 1
        assert stats["delta"]["states_incremental"] > 0
        deco.clear_caches()
        stats = deco.cache_stats()
        assert stats["makespan"]["entries"] == 0
        assert stats["frontier"]["entries"] == 0
        assert stats["frontier"]["nbytes"] == 0
        assert stats["compiled_problems"] == 0

    def test_spec_roundtrips_incremental(self, catalog):
        deco = Deco(catalog, seed=3, incremental=False)
        rebuilt = Deco.from_spec(deco.spec())
        assert rebuilt.incremental is False
