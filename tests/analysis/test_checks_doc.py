"""docs/checks.md is generated -- fail when it drifts from the registry."""

from __future__ import annotations

from pathlib import Path

from repro.wlog.diagnostics import CHECK_EXAMPLES, CHECKS, checks_markdown

DOC = Path(__file__).resolve().parents[2] / "docs" / "checks.md"


def test_doc_matches_generator():
    assert DOC.read_text() == checks_markdown(), (
        "docs/checks.md is stale; regenerate with "
        "`python -m repro lint --explain > docs/checks.md`"
    )


def test_every_check_is_documented():
    text = checks_markdown()
    for code, (name, severity, description) in CHECKS.items():
        assert f"## {code} `{name}` ({severity})" in text
        # The doc capitalizes the first letter; compare the tail.
        assert description[1:] in text


def test_every_check_has_an_example():
    missing = sorted(set(CHECKS) - set(CHECK_EXAMPLES))
    assert not missing, f"checks without a CHECK_EXAMPLES entry: {missing}"
