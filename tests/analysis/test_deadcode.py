"""Tests for constant folding, dead-rule elimination and W403-W405."""

from __future__ import annotations

from repro.analysis import analyze_semantics
from repro.analysis.deadcode import (
    _is_foldable_is,
    fold_comparison,
    fold_program,
    fold_term,
)
from repro.wlog.program import WLogProgram
from repro.wlog.terms import Num, Struct, Var


def struct(functor, *args):
    return Struct(functor, tuple(args))


class TestFoldTerm:
    def test_number_literal(self):
        assert fold_term(Num(3.5)) == 3.5

    def test_binary_arithmetic(self):
        assert fold_term(struct("+", Num(1), struct("*", Num(2), Num(3)))) == 7.0

    def test_unary_minus(self):
        assert fold_term(struct("-", Num(4))) == -4.0

    def test_variable_is_not_foldable(self):
        assert fold_term(Var("X")) is None
        assert fold_term(struct("+", Num(1), Var("X"))) is None

    def test_division_by_zero_is_not_foldable(self):
        assert fold_term(struct("/", Num(1), Num(0))) is None


class TestFoldComparison:
    def test_true_and_false(self):
        assert fold_comparison(struct("<", Num(3), Num(4))) is True
        assert fold_comparison(struct(">", Num(3), Num(4))) is False
        assert fold_comparison(struct(">=", Num(4), Num(4))) is True

    def test_non_comparison_undecidable(self):
        assert fold_comparison(struct("foo", Num(1), Num(2))) is None
        assert fold_comparison(Num(1)) is None

    def test_unbound_operand_undecidable(self):
        assert fold_comparison(struct("<", Var("X"), Num(4))) is None

    def test_foldable_is(self):
        assert _is_foldable_is(struct("is", Var("X"), struct("+", Num(1), Num(2))))
        assert not _is_foldable_is(struct("is", Var("X"), struct("+", Var("Y"), Num(2))))


DEADCODE_SOURCE = """
goal minimize C in totalcost(C).
totalcost(C) :- score(C), 1 < 2.
score(1.0) :- 3 > 4.
score(2.0).
"""


class TestFoldProgram:
    def test_drops_dead_rules_and_true_literals(self):
        program = WLogProgram.from_source(DEADCODE_SOURCE)
        folded = fold_program(program)
        heads = [r.head for r in folded.rules]
        # The `3 > 4` rule is gone entirely.
        assert len(folded.rules) == len(program.rules) - 1
        assert all("score(1.0)" not in repr(h) for h in heads)
        # The surviving totalcost rule lost its `1 < 2` literal.
        total = next(r for r in folded.rules if r.head.functor == "totalcost")
        assert all(fold_comparison(g) is None for g in total.body)

    def test_preserves_directives(self):
        program = WLogProgram.from_source(DEADCODE_SOURCE)
        folded = fold_program(program)
        assert folded.directives == program.directives

    def test_clean_program_unchanged(self):
        program = WLogProgram.from_source("goal minimize C in c(C).\nc(1.0).")
        folded = fold_program(program)
        assert len(folded.rules) == len(program.rules)


class TestDiagnostics:
    def test_constant_condition_is_w403(self):
        report = analyze_semantics(
            "goal minimize C in c(C).\nc(X) :- X is 1 + 2, 1 < 2."
        )
        checks = [d.check for d in report.diagnostics]
        assert checks.count("W403") == 2  # the comparison and the ground `is`

    def test_dead_rule_is_w404(self):
        report = analyze_semantics(
            "goal minimize C in c(C).\nc(1.0) :- 2 < 1.\nc(2.0)."
        )
        assert "W404" in [d.check for d in report.diagnostics]

    def test_dead_rule_not_double_reported_as_w403(self):
        # A dead rule's other decidable literals belong to W404 alone.
        report = analyze_semantics(
            "goal minimize C in c(C).\nc(1.0) :- 1 < 2, 2 < 1.\nc(2.0)."
        )
        checks = [d.check for d in report.diagnostics]
        assert "W404" in checks and "W403" not in checks

    def test_pragma_shadowed_fact_is_w405(self):
        source = (
            "/* lint: assume score/1 */\n"
            "goal minimize C in c(C).\n"
            "c(C) :- score(C).\n"
            "score(1.0).\n"
        )
        report = analyze_semantics(source)
        w405 = [d for d in report.diagnostics if d.check == "W405"]
        assert len(w405) == 1
        assert "score/1" in w405[0].message

    def test_no_pragma_no_w405(self):
        report = analyze_semantics(
            "goal minimize C in c(C).\nc(C) :- score(C).\nscore(1.0)."
        )
        assert "W405" not in [d.check for d in report.diagnostics]
