"""Tests for dominance analysis: OpMask facts and search-identity.

The load-bearing property: running :class:`GenericSearch` with the
tensor-backed ``op_mask`` returns the *bit-identical* plan, cost and
evaluation count as running without it -- the mask only replaces the
tier-2 full-MC call for provably futile exploration promotes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.dominance import (
    OpMask,
    compute_op_mask,
    futile_offpath_promotes,
    op_mask_from_bounds,
)
from repro.engine.plan import deadline_presets
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.solver.search import GenericSearch
from repro.solver.state import PlanState
from repro.workflow.generators import epigenomics, ligo, montage, pipeline
from repro.workflow.runtime_model import RuntimeModel

WORKFLOWS = {
    "montage": lambda seed: montage(degrees=1.0, seed=seed),
    "ligo": lambda seed: ligo(num_tasks=60, seed=seed),
    "epigenomics": lambda seed: epigenomics(num_tasks=60, seed=seed),
}


def _compile(wf, catalog, seed, num_samples=64):
    """The bench's regime: the 'medium' critical-path deadline preset."""
    return CompiledProblem.compile(
        wf, catalog, deadline=deadline_presets(wf, catalog).medium,
        percentile=90.0, num_samples=num_samples, seed=seed,
        runtime_model=RuntimeModel(catalog),
    )


class TestSearchIdentity:
    @pytest.mark.parametrize("name", sorted(WORKFLOWS))
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("incremental", [True, False])
    def test_masked_search_is_bit_identical(self, catalog, name, seed, incremental):
        problem = _compile(WORKFLOWS[name](seed), catalog, seed)
        mask = compute_op_mask(problem)
        results = [
            GenericSearch(max_evaluations=400, incremental=incremental).solve(
                problem, op_mask=m
            )
            for m in (mask, None)
        ]
        on, off = results
        assert np.array_equal(on.best_state.assignment, off.best_state.assignment)
        assert on.best_eval.cost == off.best_eval.cost
        assert on.best_eval.probability == off.best_eval.probability
        assert on.evaluations == off.evaluations
        assert on.trace == off.trace
        assert off.pruned_candidates == 0

    def test_pruning_fires_on_ligo(self, catalog):
        """With the screening tiers off, the mask is the only thing
        standing between futile promotes and full MC -- and it fires."""
        problem = _compile(ligo(num_tasks=60, seed=0), catalog, 0)
        mask = compute_op_mask(problem)
        result = GenericSearch(max_evaluations=400, incremental=False).solve(
            problem, op_mask=mask
        )
        assert result.pruned_candidates > 0
        assert result.exact_evals + result.pruned_candidates >= result.evaluations


class TestOpMaskConstruction:
    def test_compute_op_mask_shape_and_token(self, catalog):
        problem = _compile(montage(degrees=1.0, seed=7), catalog, 7)
        mask = compute_op_mask(problem)
        assert mask.source == "tensor"
        assert mask.sample_token == problem.sample_token
        assert mask.num_types == problem.num_types
        assert mask.num_tasks == problem.num_tasks
        assert np.all(mask.lo <= mask.hi)
        assert mask.allows("promote")

    def test_unknown_op_rejected(self):
        z = np.zeros((2, 3))
        with pytest.raises(ValueError, match="unknown transformation ops"):
            OpMask(lo=z, hi=z, promote_cost_up=z.astype(bool),
                   disabled_ops=frozenset({"teleport"}))

    def test_single_type_disables_promote_family(self):
        lo = np.zeros((1, 4))
        mask = op_mask_from_bounds(
            lo=lo, hi=lo + 1.0, mean_times=lo + 0.5, prices=np.ones(1),
            parent_indices=((), (0,), (0,), (1, 2)),
        )
        assert not mask.allows("promote") and not mask.allows("demote")
        assert mask.allows("merge")

    def test_chain_disables_consolidation_family(self, catalog):
        from repro.analysis.bounds import parent_index_tuples

        wf = pipeline(num_tasks=5, seed=0)
        model = RuntimeModel(catalog)
        mean = model.mean_matrix(wf)
        parents = parent_index_tuples(wf)
        mask = op_mask_from_bounds(
            lo=mean * 0.5, hi=mean * 2.0, mean_times=mean,
            prices=np.ones(mean.shape[0]), parent_indices=parents,
        )
        assert not mask.allows("merge") and not mask.allows("co_schedule")
        assert mask.allows("promote")

    def test_stale_token_degrades_to_no_pruning(self, catalog):
        problem = _compile(ligo(num_tasks=60, seed=0), catalog, 0)
        mask = compute_op_mask(problem)
        stale = OpMask(
            lo=mask.lo, hi=mask.hi, promote_cost_up=mask.promote_cost_up,
            disabled_ops=mask.disabled_ops, source=mask.source,
            sample_token=(mask.sample_token or 0) + 1,
        )
        result = GenericSearch(max_evaluations=400, incremental=False).solve(
            problem, op_mask=stale
        )
        assert result.pruned_candidates == 0


class TestFutilityPredicate:
    def test_futile_promotes_inherit_parent_evaluation(self, catalog):
        """The proof obligation behind the tier-2 skip: a flagged
        child's full backend evaluation agrees bitwise with the parent
        on probability, feasibility and mean makespan."""
        backend = VectorizedBackend()
        checked = 0
        for seed in range(3):
            problem = _compile(ligo(num_tasks=40, seed=seed), catalog, seed)
            mask = compute_op_mask(problem)
            rng = np.random.default_rng(seed)
            for _ in range(4):
                state = PlanState(
                    rng.integers(0, problem.num_types - 1, problem.num_tasks)
                )
                futile = futile_offpath_promotes(
                    mask, problem.parent_indices, state.assignment
                )
                parent_ev = backend.evaluate_batch(problem, [state])[0]
                for i in np.flatnonzero(futile):
                    child = state.promote(int(i), problem.num_types)
                    assert child is not None
                    child_ev = backend.evaluate_batch(problem, [child])[0]
                    assert child_ev.probability == parent_ev.probability
                    assert child_ev.feasible == parent_ev.feasible
                    assert child_ev.mean_makespan == parent_ev.mean_makespan
                    checked += 1
        assert checked > 0, "no futile promote found -- predicate never fired"

    def test_never_flags_critical_tasks(self, catalog):
        """A task on every realization's critical path is never flagged."""
        problem = _compile(pipeline(num_tasks=6, seed=1), catalog, 1)
        mask = compute_op_mask(problem)
        state = PlanState.uniform(problem.num_tasks, 0)
        futile = futile_offpath_promotes(
            mask, problem.parent_indices, state.assignment
        )
        # On a chain every task is on the single path: nothing is futile.
        assert not futile.any()
