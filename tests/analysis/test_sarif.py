"""Tests for the SARIF 2.1.0 emitter shared by lint and analyze."""

from __future__ import annotations

import json

from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION, to_sarif
from repro.wlog.diagnostics import CHECKS, Diagnostic, Span


def _findings():
    return [
        ("a.wlog", Diagnostic("E401", "error", "deadline unreachable",
                              Span(4, 1, 4, 50))),
        ("a.wlog", Diagnostic("W403", "warning", "constant condition",
                              Span(7, 10))),
        ("b.wlog", Diagnostic("E401", "error", "also unreachable")),
    ]


class TestToSarif:
    def test_envelope(self):
        log = to_sarif(_findings())
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        assert len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-wlog"

    def test_rules_cover_only_referenced_checks(self):
        driver = to_sarif(_findings())["runs"][0]["tool"]["driver"]
        assert [r["id"] for r in driver["rules"]] == ["E401", "W403"]
        e401 = driver["rules"][0]
        assert e401["name"] == CHECKS["E401"][0]
        assert e401["defaultConfiguration"]["level"] == "error"

    def test_rule_index_points_into_rule_table(self):
        log = to_sarif(_findings())
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        for result in log["runs"][0]["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_result_regions(self):
        results = to_sarif(_findings())["runs"][0]["results"]
        full = results[0]["locations"][0]["physicalLocation"]
        assert full["artifactLocation"]["uri"] == "a.wlog"
        assert full["region"] == {
            "startLine": 4, "startColumn": 1, "endLine": 4, "endColumn": 50,
        }
        # A span without an end keeps only the start; no span, no region.
        assert to_sarif(_findings())["runs"][0]["results"][1][
            "locations"][0]["physicalLocation"]["region"] == {
            "startLine": 7, "startColumn": 10,
        }
        assert "region" not in results[2]["locations"][0]["physicalLocation"]

    def test_empty_findings(self):
        log = to_sarif([])
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []

    def test_json_serializable(self):
        text = json.dumps(to_sarif(_findings()))
        assert json.loads(text)["version"] == "2.1.0"
