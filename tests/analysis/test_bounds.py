"""Tests for interval/bound inference (BoundsPass and helpers)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_semantics
from repro.analysis.bounds import (
    cost_interval,
    longest_path,
    makespan_interval,
    parent_index_tuples,
    support_bounds,
)
from repro.solver.backends import CompiledProblem
from repro.workflow.generators import ligo, pipeline

from tests.analysis.conftest import program_source


@pytest.fixture(scope="module")
def compiled(catalog):
    wf = ligo(num_tasks=40, seed=3)
    return CompiledProblem.compile(
        workflow=wf, catalog=catalog, deadline=1.0, percentile=96.0,
        num_samples=64, seed=3,
    )


class TestSupportBounds:
    def test_brackets_every_tensor_cell(self, compiled, catalog):
        """The sampling-free bounds hold for every Monte Carlo draw."""
        lo, hi = support_bounds(compiled.workflow, catalog)
        assert lo.shape == hi.shape == compiled.tensor.shape[:1] + compiled.tensor.shape[2:]
        cell_min = compiled.tensor.min(axis=1)
        cell_max = compiled.tensor.max(axis=1)
        assert np.all(lo <= cell_min + 1e-9)
        assert np.all(hi >= cell_max - 1e-9)

    def test_brackets_mean_times(self, compiled, catalog):
        lo, hi = support_bounds(compiled.workflow, catalog)
        assert np.all(lo <= compiled.mean_times + 1e-9)
        assert np.all(hi >= compiled.mean_times - 1e-9)


class TestLongestPath:
    def test_chain_is_sum(self):
        parents = ((), (0,), (1,))
        times = np.array([1.0, 2.0, 3.0])
        assert longest_path(parents, times) == pytest.approx(6.0)

    def test_diamond_takes_max_branch(self):
        parents = ((), (0,), (0,), (1, 2))
        times = np.array([1.0, 5.0, 2.0, 1.0])
        assert longest_path(parents, times) == pytest.approx(7.0)

    def test_empty(self):
        assert longest_path((), np.array([])) == 0.0


class TestMakespanInterval:
    def test_brackets_all_assignments(self, compiled, catalog):
        """mk interval holds the mean makespan of any type assignment."""
        lo, hi = support_bounds(compiled.workflow, catalog)
        parents = parent_index_tuples(compiled.workflow)
        mk = makespan_interval(parents, lo, hi)
        rng = np.random.default_rng(0)
        k, n = compiled.mean_times.shape
        for _ in range(20):
            a = rng.integers(0, k, size=n)
            mean_mk = longest_path(parents, compiled.mean_times[a, np.arange(n)])
            assert mk.lo <= mean_mk <= mk.hi

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), num_tasks=st.integers(2, 12))
    def test_chain_interval_brackets_analytic_mean(self, catalog, seed, num_tasks):
        """On a pure chain the makespan is the plain sum of task times,
        so the analytic mean makespan of *any* assignment must land in
        the interval -- the property the E401 proof rests on."""
        wf = pipeline(num_tasks=num_tasks, seed=seed)
        lo, hi = support_bounds(wf, catalog)
        parents = parent_index_tuples(wf)
        assert all(len(p) <= 1 for p in parents)  # really a chain
        mk = makespan_interval(parents, lo, hi)
        from repro.workflow.runtime_model import RuntimeModel

        mean = RuntimeModel(catalog).mean_matrix(wf)
        rng = np.random.default_rng(seed)
        k, n = mean.shape
        for _ in range(5):
            a = rng.integers(0, k, size=n)
            analytic_mean = float(mean[a, np.arange(n)].sum())
            assert mk.lo <= analytic_mean <= mk.hi


class TestCostInterval:
    def test_brackets_all_assignments(self, compiled):
        cost = cost_interval(compiled.mean_times, compiled.prices)
        rng = np.random.default_rng(1)
        k, n = compiled.mean_times.shape
        idx = np.arange(n)
        for _ in range(20):
            a = rng.integers(0, k, size=n)
            c = float(
                (compiled.mean_times[a, idx] * compiled.prices[a]).sum() / 3600.0
            )
            assert cost.lo - 1e-9 <= c <= cost.hi + 1e-9


class TestConstraintChecks:
    def test_budget_unreachable_is_e402(self, registry):
        source = program_source() + (
            "\ncons C2 in totalcost(C2) satisfies budget(95%, 0.0001).\n"
        )
        report = analyze_semantics(source, registry=registry)
        assert "E402" in [d.check for d in report.errors]

    def test_budget_vacuous_is_w402(self, registry):
        source = program_source() + (
            "\ncons C2 in totalcost(C2) satisfies budget(95%, 100000.0).\n"
        )
        report = analyze_semantics(source, registry=registry)
        assert "W402" in [d.check for d in report.warnings]

    def test_reliability_unreachable_is_e403(self, registry):
        # Rate 0.9, zero retries: P(all ~25 tasks succeed) ~ 0.1**25,
        # hopeless against the demanded 99%.
        source = program_source() + (
            "\nfault_model(0.9, 36000.0)."
            "\ncons P in successprob(P) satisfies reliability(99%, 0).\n"
        )
        report = analyze_semantics(source, registry=registry)
        assert "E403" in [d.check for d in report.errors]

    def test_reliable_fault_model_is_clean(self, registry):
        source = program_source() + (
            "\nfault_model(0.01, 36000.0)."
            "\ncons P in successprob(P) satisfies reliability(50%, 3).\n"
        )
        report = analyze_semantics(source, registry=registry)
        assert "E403" not in [d.check for d in report.diagnostics]
