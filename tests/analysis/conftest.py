"""Shared fixtures for the semantic-analysis tests."""

from __future__ import annotations

import pytest

from repro.wlog.imports import ImportRegistry
from repro.wlog.library import scheduling_program
from repro.workflow.generators import montage


@pytest.fixture(scope="session")
def small_workflow():
    return montage(degrees=1.0, seed=7)


@pytest.fixture(scope="session")
def registry(catalog, small_workflow):
    reg = ImportRegistry()
    reg.register_cloud("amazonec2", catalog)
    reg.register_workflow("montage", small_workflow)
    return reg


def program_source(deadline_seconds: float = 36_000.0, percentile: float = 95.0) -> str:
    """The paper's Example 1 with a configurable deadline."""
    return scheduling_program(
        cloud="amazonec2",
        workflow="montage",
        percentile=percentile,
        deadline_seconds=deadline_seconds,
    )
