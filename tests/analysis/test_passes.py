"""Tests for the pass manager and the analyze_semantics driver."""

from __future__ import annotations

import time

import pytest

from repro.analysis import analyze_semantics, default_passes
from repro.analysis.domain import Interval
from repro.analysis.passes import AnalysisContext, AnalysisPass, PassManager
from repro.common.errors import ValidationError
from repro.wlog.program import WLogProgram

from tests.analysis.conftest import program_source


class TestAnalysisContext:
    def test_put_is_write_once(self):
        ctx = AnalysisContext(program=WLogProgram.from_source("goal minimize C in c(C)."))
        ctx.put("k", 1)
        with pytest.raises(ValidationError):
            ctx.put("k", 2)

    def test_emit_defaults_severity_from_catalog(self):
        ctx = AnalysisContext(program=WLogProgram.from_source("goal minimize C in c(C)."))
        ctx.emit("E401", "boom")
        ctx.emit("W404", "meh")
        assert [d.severity for d in ctx.diagnostics] == ["error", "warning"]


class _Writer(AnalysisPass):
    name = "writer"
    provides = ("a",)

    def run(self, ctx):
        if "a" in ctx.facts:
            return False
        ctx.put("a", 1)
        return True


class _Reader(AnalysisPass):
    name = "reader"
    requires = ("a",)
    provides = ("b",)

    def run(self, ctx):
        if "b" in ctx.facts:
            return False
        ctx.put("b", ctx.facts["a"])
        return True


class TestPassManager:
    def test_fixpoint_orders_by_requirements(self):
        # Reader listed first still runs -- the fixpoint re-offers it
        # once writer has published "a".
        ctx = AnalysisContext(program=WLogProgram.from_source("goal minimize C in c(C)."))
        ran, iterations = PassManager([_Reader(), _Writer()]).run(ctx)
        assert set(ran) == {"writer", "reader"}
        assert ctx.facts == {"a": 1, "b": 1}
        assert 2 <= iterations <= 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            PassManager([_Writer(), _Writer()])

    def test_iteration_cap_bounds_buggy_passes(self):
        class Restless(AnalysisPass):
            name = "restless"

            def run(self, ctx):
                return True  # never converges

        ctx = AnalysisContext(program=WLogProgram.from_source("goal minimize C in c(C)."))
        _, iterations = PassManager([Restless()], max_iterations=3).run(ctx)
        assert iterations == 3


class TestAnalyzeSemantics:
    def test_clean_program_has_facts_and_no_findings(self, registry):
        report = analyze_semantics(program_source(), registry=registry)
        assert report.diagnostics == ()
        assert isinstance(report.facts["makespan_interval"], Interval)
        assert isinstance(report.facts["cost_interval"], Interval)
        assert report.op_mask is not None
        assert "bounds" in report.passes_run and "dominance" in report.passes_run

    def test_infeasible_deadline_is_e401(self, registry):
        report = analyze_semantics(program_source(deadline_seconds=5.0), registry=registry)
        assert [d.check for d in report.errors] == ["E401"]
        assert "provably unreachable" in report.errors[0].message
        assert report.errors[0].span is not None  # anchored at the cons directive

    def test_vacuous_deadline_is_w401(self, registry):
        report = analyze_semantics(program_source(deadline_seconds=1e12), registry=registry)
        assert [d.check for d in report.warnings] == ["W401"]

    def test_no_registry_still_runs_syntax_level_passes(self):
        # Without a registry nothing semantic can be bounded, but the
        # dead-code family still runs and the driver does not crash.
        report = analyze_semantics(program_source())
        assert report.diagnostics == ()
        assert "makespan_interval" not in report.facts

    def test_gate_budget_under_50ms(self, registry):
        source = program_source(deadline_seconds=5.0)
        analyze_semantics(source, registry=registry)  # warm imports
        t0 = time.perf_counter()
        report = analyze_semantics(source, registry=registry)
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        assert report.errors
        assert elapsed_ms < 50.0, f"semantic gate took {elapsed_ms:.1f} ms"

    def test_custom_pass_list(self, registry):
        report = analyze_semantics(program_source(), registry=registry, passes=[_Writer()])
        assert report.facts == {"a": 1}

    def test_default_pipeline_shape(self):
        names = [p.name for p in default_passes()]
        assert names == [
            "constant-condition",
            "dead-rule",
            "shadowed-fact",
            "bounds",
            "dominance",
        ]
