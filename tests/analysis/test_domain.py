"""Tests for the interval abstract domain."""

import math

import pytest

from repro.analysis.domain import Interval
from repro.common.errors import ValidationError


class TestConstruction:
    def test_basic(self):
        iv = Interval(1.0, 3.0)
        assert iv.lo == 1.0 and iv.hi == 3.0

    def test_point(self):
        assert Interval.point(2.5) == Interval(2.5, 2.5)
        assert Interval.point(2.5).width == 0.0

    def test_top_contains_everything(self):
        top = Interval.top()
        assert top.contains(0.0)
        assert top.contains(1e300)
        assert top.contains(-1e300)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Interval(3.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            Interval(math.nan, 1.0)
        with pytest.raises(ValidationError):
            Interval(0.0, math.nan)


class TestArithmetic:
    def test_add(self):
        assert Interval(1, 2) + Interval(10, 20) == Interval(11, 22)

    def test_scale(self):
        assert Interval(1, 2).scale(3.0) == Interval(3, 6)

    def test_max(self):
        assert Interval(1, 5).max(Interval(2, 3)) == Interval(2, 5)

    def test_join_is_hull(self):
        assert Interval(1, 2).join(Interval(5, 6)) == Interval(1, 6)

    def test_contains(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0) and iv.contains(2.0) and iv.contains(1.5)
        assert not iv.contains(0.99) and not iv.contains(2.01)


class TestDecisions:
    def test_certainly_above(self):
        assert Interval(5, 9).certainly_above(4.9)
        assert not Interval(5, 9).certainly_above(5.0)  # lo == bound: reachable

    def test_certainly_at_most(self):
        assert Interval(5, 9).certainly_at_most(9.0)
        assert not Interval(5, 9).certainly_at_most(8.9)

    def test_sound_over_add(self):
        # Whatever x in a, y in b: x + y lands in a + b.
        a, b = Interval(1.5, 2.5), Interval(0.25, 4.0)
        for x in (1.5, 2.0, 2.5):
            for y in (0.25, 1.0, 4.0):
                assert (a + b).contains(x + y)
