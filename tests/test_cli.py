"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_experiments(self):
        code, text = run_cli(["list"])
        assert code == 0
        for key in EXPERIMENTS:
            assert key in text


class TestRun:
    def test_fig01(self):
        code, text = run_cli(
            ["run", "fig01", "--seed", "7", "--samples", "40", "--evals", "150", "--runs", "2"]
        )
        assert code == 0
        assert "Figure 1" in text
        assert "deco" in text

    def test_table2(self):
        code, text = run_cli(["run", "table2", "--samples", "40"])
        assert code == 0
        assert "gamma" in text and "normal" in text

    def test_speedup(self):
        code, text = run_cli(["run", "speedup", "--samples", "20", "--evals", "50"])
        assert code == 0
        assert "speedup" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_cli(["run", "fig99"])


class TestSchedule:
    def test_montage_schedule(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--degrees", "1",
             "--samples", "40", "--evals", "150"]
        )
        assert code == 0
        assert "feasible:        True" in text
        assert "instance mix" in text

    def test_numeric_deadline(self):
        code, text = run_cli(
            ["schedule", "--app", "ligo", "--tasks", "30", "--deadline", "100000",
             "--samples", "40", "--evals", "100"]
        )
        assert code == 0

    def test_infeasible_exit_code(self):
        code, text = run_cli(
            ["schedule", "--app", "ligo", "--tasks", "30", "--deadline", "1",
             "--samples", "30", "--evals", "60"]
        )
        assert code == 1
        assert "feasible:        False" in text

    def test_execute_flag(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--degrees", "1", "--execute",
             "--samples", "40", "--evals", "150"]
        )
        assert code == 0
        assert "measured (10 runs)" in text


class TestCalibrate:
    def test_calibrate(self):
        code, text = run_cli(["calibrate"])
        assert code == 0
        assert "m1.xlarge" in text
