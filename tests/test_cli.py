"""Tests for the command-line interface."""

import io

from repro.cli import EXPERIMENTS, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_experiments(self):
        code, text = run_cli(["list"])
        assert code == 0
        for key in EXPERIMENTS:
            assert key in text


class TestRun:
    def test_fig01(self):
        code, text = run_cli(
            ["run", "fig01", "--seed", "7", "--samples", "40", "--evals", "150", "--runs", "2"]
        )
        assert code == 0
        assert "Figure 1" in text
        assert "deco" in text

    def test_table2(self):
        code, text = run_cli(["run", "table2", "--samples", "40"])
        assert code == 0
        assert "gamma" in text and "normal" in text

    def test_speedup(self):
        code, text = run_cli(["run", "speedup", "--samples", "20", "--evals", "50"])
        assert code == 0
        assert "speedup" in text

    def test_unknown_experiment_rejected(self):
        code, text = run_cli(["run", "fig99"])
        assert code == 2
        assert "unknown experiment 'fig99'" in text
        assert text.count("\n") == 1  # one-line error, not a traceback dump


class TestSchedule:
    def test_montage_schedule(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--degrees", "1",
             "--samples", "40", "--evals", "150"]
        )
        assert code == 0
        assert "feasible:        True" in text
        assert "instance mix" in text

    def test_numeric_deadline(self):
        code, text = run_cli(
            ["schedule", "--app", "ligo", "--tasks", "30", "--deadline", "100000",
             "--samples", "40", "--evals", "100"]
        )
        assert code == 0

    def test_infeasible_exit_code(self):
        code, text = run_cli(
            ["schedule", "--app", "ligo", "--tasks", "30", "--deadline", "1",
             "--samples", "30", "--evals", "60"]
        )
        assert code == 1
        assert "feasible:        False" in text

    def test_execute_flag(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--degrees", "1", "--execute",
             "--samples", "40", "--evals", "150"]
        )
        assert code == 0
        assert "measured (10 runs)" in text

    def test_workers_flag_matches_serial_plan(self):
        import warnings

        args = ["schedule", "--app", "montage", "--degrees", "1",
                "--samples", "40", "--evals", "150"]
        code_serial, serial = run_cli(args)
        with warnings.catch_warnings():
            # Advisory oversubscription warning on small CI hosts.
            warnings.simplefilter("ignore", RuntimeWarning)
            code, sharded = run_cli(args + ["--workers", "2"])
        assert code == code_serial == 0
        assert "workers:         2 beam shards" in sharded
        assert "speculative expansions" in sharded
        # Every decision line (cost, mix, probability) is byte-identical;
        # only the workers line and the wall-clock line may differ.
        decisions = [
            line for line in serial.splitlines()
            if line.split(":")[0].strip()
            in ("deadline", "feasible", "P(mk <= D)", "expected cost", "instance mix")
        ]
        for line in decisions:
            assert line in sharded


class TestScheduleValidation:
    def test_missing_dax_path(self):
        code, text = run_cli(["schedule", "--dax", "/no/such/file.xml"])
        assert code == 2
        assert "DAX file not found" in text

    def test_unparsable_dax(self, tmp_path):
        bad = tmp_path / "bad.xml"
        bad.write_text("this is not a dax file")
        code, text = run_cli(["schedule", "--dax", str(bad)])
        assert code == 2
        assert "cannot parse DAX file" in text

    def test_dax_schedule_runs(self, tmp_path):
        from repro.workflow import generators, write_dax

        wf = generators.montage(degrees=1.0, seed=7)
        path = tmp_path / "montage.xml"
        write_dax(wf, path)
        code, text = run_cli(
            ["schedule", "--dax", str(path), "--deadline", "100000",
             "--samples", "40", "--evals", "100"]
        )
        assert code == 0
        assert "instance mix" in text

    def test_percentile_out_of_range(self):
        code, text = run_cli(["schedule", "--percentile", "150"])
        assert code == 2
        assert "(0, 100]" in text

    def test_bad_deadline_keyword(self):
        code, text = run_cli(["schedule", "--deadline", "soonish"])
        assert code == 2
        assert "tight|medium|loose" in text


class TestLint:
    def test_bundled_programs_clean(self):
        code, text = run_cli(["lint", "--bundled"])
        assert code == 0
        assert "0 error(s), 0 warning(s)" in text

    def test_flags_bad_file(self, tmp_path):
        prog = tmp_path / "bad.wlog"
        prog.write_text(
            "goal minimize C in totalcst(C).\n"
            "var x(A, Con) forall item(A).\n"
            "totalcost(C) :- item(C).\n"
            "/* lint: assume item/1 */\n"
        )
        code, text = run_cli(["lint", str(prog)])
        assert code == 1
        assert "E201" in text and "totalcst/1" in text
        assert "did you mean totalcost" in text
        assert f"{prog}:1:20" in text
        assert "^" in text  # caret excerpt rendered

    def test_json_format(self, tmp_path):
        import json

        prog = tmp_path / "bad.wlog"
        prog.write_text("goal minimize C in missing(C).\nvar x(A, Con) forall vm(A).\n")
        code, text = run_cli(["lint", "--format", "json", str(prog)])
        assert code == 1
        findings = json.loads(text)
        assert any(f["check"] == "E201" and f["line"] == 1 for f in findings)

    def test_syntax_error_reported_as_diagnostic(self, tmp_path):
        prog = tmp_path / "syn.wlog"
        prog.write_text("f(a) g.\n")
        code, text = run_cli(["lint", str(prog)])
        assert code == 1
        assert "E101" in text and ":1:6" in text

    def test_strict_promotes_warnings(self, tmp_path):
        prog = tmp_path / "warn.wlog"
        prog.write_text(
            "goal minimize C in total(C).\n"
            "var x(A, Con) forall item(A).\n"
            "total(C) :- item(C), item(Unused).\n"
            "/* lint: assume item/1 */\n"
        )
        code, _ = run_cli(["lint", str(prog)])
        assert code == 0
        code, text = run_cli(["lint", "--strict", str(prog)])
        assert code == 1
        assert "W301" in text

    def test_assume_flag(self, tmp_path):
        prog = tmp_path / "driver.wlog"
        prog.write_text(
            "goal minimize C in total(C).\n"
            "var x(A, Con) forall item(A).\n"
            "total(C) :- item(C).\n"
        )
        code, text = run_cli(["lint", str(prog)])
        assert code == 1  # item/1 unknown
        code, text = run_cli(["lint", "--assume", "item/1", str(prog)])
        assert code == 0

    def test_missing_file(self):
        code, text = run_cli(["lint", "/no/such/prog.wlog"])
        assert code == 2
        assert "no such file" in text

    def test_bad_assume_spec(self):
        code, text = run_cli(["lint", "--assume", "notanindicator", "--bundled"])
        assert code == 2
        assert "PRED/ARITY" in text

    def test_no_targets(self):
        code, text = run_cli(["lint"])
        assert code == 2

    def test_example_files_clean(self):
        import pathlib

        examples_dir = pathlib.Path(__file__).resolve().parent.parent / "examples"
        examples = sorted(str(p) for p in examples_dir.glob("*.wlog"))
        assert len(examples) == 5
        code, text = run_cli(["lint", *examples])
        assert code == 0
        assert "0 error(s), 0 warning(s)" in text


class TestWorkersOption:
    def test_run_with_workers(self):
        code, text = run_cli(
            ["run", "fig01", "--seed", "7", "--samples", "40", "--evals", "150",
             "--runs", "2", "--workers", "2"]
        )
        assert code == 0
        assert "Figure 1" in text

    def test_schedule_execute_with_workers(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--degrees", "1", "--execute",
             "--samples", "40", "--evals", "150", "--workers", "2"]
        )
        assert code == 0
        assert "measured (10 runs)" in text

    def test_rejects_zero(self):
        code, text = run_cli(["run", "fig01", "--workers", "0"])
        assert code == 2
        assert "--workers must be a positive integer" in text
        assert text.count("\n") == 1  # one-line error, no traceback

    def test_rejects_negative(self):
        code, text = run_cli(["schedule", "--workers", "-3"])
        assert code == 2
        assert "--workers must be a positive integer" in text

    def test_rejects_non_integer(self):
        code, text = run_cli(["run", "fig01", "--workers", "2.5"])
        assert code == 2
        assert "--workers must be a positive integer" in text

    def test_env_var_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        code, text = run_cli(["run", "fig01", "--samples", "40", "--evals", "150"])
        assert code == 2
        assert "REPRO_WORKERS" in text
        assert text.count("\n") == 1

    def test_env_var_zero_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        code, text = run_cli(
            ["run", "fig01", "--seed", "7", "--samples", "40", "--evals", "150",
             "--runs", "2"]
        )
        assert code == 0

    def test_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "banana")  # would fail if consulted
        code, _ = run_cli(
            ["run", "fig01", "--seed", "7", "--samples", "40", "--evals", "150",
             "--runs", "2", "--workers", "1"]
        )
        assert code == 0


class TestBench:
    def test_parallel_target(self, tmp_path):
        import json

        out_path = tmp_path / "BENCH_parallel.json"
        code, text = run_cli(
            ["bench", "parallel", "--out", str(out_path), "--seed", "7",
             "--samples", "30", "--evals", "80", "--runs", "4",
             "--degrees", "1", "--workers", "2"]
        )
        assert code == 0
        assert "Parallel runtime" in text
        assert "identical=True" in text
        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "parallel_runtime"
        assert payload["workers"] == 2
        assert payload["identical"] is True

    def test_solver_target(self, tmp_path):
        import json

        out_path = tmp_path / "BENCH_solver.json"
        code, text = run_cli(
            ["bench", "solver", "--out", str(out_path),
             "--samples", "20", "--evals", "50"]
        )
        assert code == 0
        assert "wrote" in text
        payload = json.loads(out_path.read_text())
        assert "solver_speedup" in payload
        assert "host_cpu_count" in payload

    def test_rejects_bad_runs(self, tmp_path):
        code, text = run_cli(
            ["bench", "parallel", "--out", str(tmp_path / "x.json"), "--runs", "0"]
        )
        assert code == 2
        assert "--runs must be >= 1" in text


class TestCalibrate:
    def test_calibrate(self):
        code, text = run_cli(["calibrate"])
        assert code == 0
        assert "m1.xlarge" in text


class TestFaultFlags:
    def test_schedule_with_faults(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--degrees", "1",
             "--samples", "40", "--evals", "150",
             "--faults", "--failure-rate", "0.1"]
        )
        assert code == 0
        assert "fault model:" in text

    def test_schedule_faults_execute_reports_aborts(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--degrees", "1",
             "--samples", "40", "--evals", "150",
             "--faults", "--failure-rate", "0.1", "--execute"]
        )
        assert code == 0
        assert "measured" in text

    def test_failure_rate_out_of_range(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--faults", "--failure-rate", "1.5"]
        )
        assert code == 2
        assert "--failure-rate must be in [0, 1)" in text
        assert text.count("\n") == 1  # one-line error, not a traceback dump

    def test_mtbf_must_be_positive(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--faults", "--mtbf", "-3"]
        )
        assert code == 2
        assert "--mtbf must be > 0" in text

    def test_on_abort_validated(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--faults", "--on-abort", "bogus"]
        )
        assert code == 2
        assert "--on-abort" in text

    def test_bench_faults_target(self, tmp_path):
        import json

        out_path = tmp_path / "BENCH_faults.json"
        code, text = run_cli(
            ["bench", "faults", "--out", str(out_path), "--seed", "7",
             "--samples", "30", "--evals", "150", "--runs", "6",
             "--degrees", "1", "--workers", "2", "--failure-rate", "0.12"]
        )
        assert code == 0
        assert "Fault ablation" in text
        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "fault_ablation"
        assert payload["failure_rate"] == 0.12
        assert payload["identical"] is True


class TestBackendFlags:
    def test_schedule_analytic_backend(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--degrees", "1",
             "--backend", "analytic", "--samples", "40", "--evals", "150"]
        )
        assert code == 0
        assert "backend:         analytic" in text

    def test_schedule_rejects_unknown_backend(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--degrees", "1",
             "--backend", "bogus"]
        )
        assert code == 2
        assert "--backend must be one of" in text
        assert "analytic" in text  # the message names the valid choices
        assert text.count("\n") == 1  # one-line usage error, no traceback

    def test_bench_solver_rejects_unknown_backend(self, tmp_path):
        code, text = run_cli(
            ["bench", "solver", "--out", str(tmp_path / "x.json"),
             "--backend", "turbo"]
        )
        assert code == 2
        assert "--backend must be one of" in text

    def test_bench_solver_skips_sections(self, tmp_path):
        import json

        out_path = tmp_path / "BENCH_solver.json"
        code, text = run_cli(
            ["bench", "solver", "--out", str(out_path),
             "--no-incremental", "--no-analytic-screen",
             "--samples", "20", "--evals", "50"]
        )
        assert code == 0
        assert "section skipped" in text
        payload = json.loads(out_path.read_text())
        assert payload["incremental"]["per_state"] == []
        assert payload["analytic"]["per_state"] == []
        assert payload["analytic"]["accuracy"] == []

    def test_schedule_no_analytic_screen(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--degrees", "1",
             "--no-analytic-screen", "--samples", "40", "--evals", "150"]
        )
        assert code == 0
        assert "feasible:        True" in text


class TestAnalyze:
    def test_infeasible_example_rejected(self):
        import pathlib

        example = pathlib.Path(__file__).parents[1] / "examples" / "infeasible_deadline.wlog"
        code, text = run_cli(["analyze", str(example)])
        assert code == 1
        assert "E401" in text and "deadline-unreachable" in text
        assert "1 error(s)" in text

    def test_clean_example_passes(self):
        import pathlib

        example = pathlib.Path(__file__).parents[1] / "examples" / "example1_scheduling.wlog"
        code, text = run_cli(["analyze", str(example)])
        assert code == 0
        assert "0 error(s), 0 warning(s)" in text

    def test_bundled_programs_clean(self):
        code, text = run_cli(["analyze", "--bundled"])
        assert code == 0
        assert "0 error(s), 0 warning(s)" in text

    def test_sarif_output(self):
        import json
        import pathlib

        example = pathlib.Path(__file__).parents[1] / "examples" / "infeasible_deadline.wlog"
        code, text = run_cli(["analyze", "--format", "sarif", str(example)])
        assert code == 1
        log = json.loads(text)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-wlog"
        assert [r["ruleId"] for r in log["runs"][0]["results"]] == ["E401"]

    def test_syntax_error_reported_without_crash(self, tmp_path):
        prog = tmp_path / "broken.wlog"
        prog.write_text("goal minimize C in totalcost(C")
        code, text = run_cli(["analyze", str(prog)])
        assert code == 1
        assert "E101" in text

    def test_missing_file(self):
        code, text = run_cli(["analyze", "/no/such/prog.wlog"])
        assert code == 2
        assert "no such file" in text


class TestLintSarifAndExplain:
    def test_lint_sarif_shares_emitter(self, tmp_path):
        import json

        prog = tmp_path / "bad.wlog"
        prog.write_text("goal minimize C in totalcst(C).\n")
        code, text = run_cli(["lint", "--format", "sarif", str(prog)])
        assert code == 1
        log = json.loads(text)
        assert log["version"] == "2.1.0"
        assert any(r["ruleId"] == "E201" for r in log["runs"][0]["results"])

    def test_lint_explain_prints_catalog(self):
        from repro.wlog.diagnostics import checks_markdown

        code, text = run_cli(["lint", "--explain"])
        assert code == 0
        assert text == checks_markdown()


class TestSolveDeadlineFlag:
    def test_rejects_nonpositive(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--solve-deadline", "0"]
        )
        assert code == 2
        assert "--solve-deadline must be > 0 seconds" in text

    def test_undersized_budget_reports_timeout(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--degrees", "1",
             "--samples", "40", "--evals", "150",
             "--solve-deadline", "0.000001"]
        )
        assert code == 0  # best incumbent is still a usable, feasible plan
        assert "timed out:" in text
        assert "solve watchdog" in text

    def test_ample_budget_is_silent(self):
        code, text = run_cli(
            ["schedule", "--app", "montage", "--degrees", "1",
             "--samples", "40", "--evals", "150",
             "--solve-deadline", "1000000"]
        )
        assert code == 0
        assert "timed out:" not in text


class TestServeFlags:
    """Validation-only: a well-formed serve blocks on serve_forever."""

    def test_rejects_bad_depths(self):
        code, text = run_cli(["serve", "--degrade-depth", "0"])
        assert code == 2
        assert "--degrade-depth must be >= 1" in text

    def test_rejects_bad_hang_after(self):
        code, text = run_cli(["serve", "--hang-after", "0"])
        assert code == 2
        assert "--hang-after must be > 0" in text

    def test_rejects_bad_max_attempts(self):
        code, text = run_cli(["serve", "--max-attempts", "0"])
        assert code == 2
        assert "--max-attempts must be >= 1" in text


class TestSubmitFlags:
    def test_rejects_unknown_backend(self):
        code, text = run_cli(
            ["submit", "--app", "montage", "--backend", "bogus"]
        )
        assert code == 2
        assert "--backend must be gpu|cpu|analytic" in text

    def test_rejects_nonpositive_solve_deadline(self):
        code, text = run_cli(
            ["submit", "--app", "montage", "--solve-deadline", "-1"]
        )
        assert code == 2
        assert "--solve-deadline must be > 0 seconds" in text

    def test_unreachable_service_exits_2(self):
        code, text = run_cli(
            ["submit", "--app", "montage", "--url", "http://127.0.0.1:9",
             "--timeout", "1"]
        )
        assert code == 2
        assert "cannot reach service" in text

    def test_missing_wlog_file(self):
        code, text = run_cli(
            ["submit", "--app", "montage", "--wlog", "/no/such/prog.wlog"]
        )
        assert code == 2
        assert "WLog program not found" in text
