"""Smoke tests for the parallel-runtime benchmark emitter."""

import json

import pytest

from repro.bench import BenchConfig
from repro.bench.parallel import (
    bench_parallel,
    default_bench_workers,
    host_cpu_count,
    write_bench_parallel_json,
)

ROW_FIELDS = {
    "site",
    "subject",
    "units",
    "workers",
    "host_cpu_count",
    "serial_seconds",
    "parallel_seconds",
    "oversubscribed",
    "speedup",
    "efficiency",
    "identical",
}


@pytest.fixture(scope="module")
def config():
    return BenchConfig(seed=7, num_samples=30, max_evaluations=80, runs_per_plan=2)


@pytest.fixture(scope="module")
def rows(config):
    return bench_parallel(config, workers=2, runs=4, degrees=1.0, ensemble_members=2)


class TestBenchParallel:
    def test_three_sites(self, rows):
        assert [r["site"] for r in rows] == ["run_many", "member_plans", "fig02_driver"]

    def test_row_fields(self, rows):
        for row in rows:
            assert ROW_FIELDS <= set(row)
            assert row["workers"] == 2
            assert row["serial_seconds"] > 0
            assert row["parallel_seconds"] > 0
            assert row["speedup"] >= 0
            assert row["efficiency"] == pytest.approx(row["speedup"] / row["workers"])

    def test_determinism_flag_holds(self, rows):
        # The whole point of the runtime: every site bit-identical.
        assert all(r["identical"] for r in rows)

    def test_host_cpu_count_positive(self):
        assert host_cpu_count() >= 1
        assert 2 <= default_bench_workers() <= 4

    def test_oversubscribed_flag_reflects_host(self, rows):
        # 2 workers were requested; the flag must agree with the host.
        for row in rows:
            assert row["oversubscribed"] == (2 > row["host_cpu_count"])


class TestWriteBenchParallelJson:
    def test_writes_parseable_payload(self, tmp_path, config, rows):
        out = tmp_path / "BENCH_parallel.json"
        payload = write_bench_parallel_json(out, config, rows=rows)
        on_disk = json.loads(out.read_text())
        assert on_disk == json.loads(json.dumps(payload, default=float))
        assert on_disk["benchmark"] == "parallel_runtime"
        assert on_disk["unit"] == "s"
        assert on_disk["workers"] == 2
        assert on_disk["speedup"] >= 0
        assert on_disk["identical"] is True
        assert len(on_disk["rows"]) == 3
