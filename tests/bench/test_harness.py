"""Tests for the bench harness utilities."""

import pytest

from repro.bench.harness import BenchConfig, format_table, is_full_profile, normalize


class TestNormalize:
    def test_adds_normalized_column(self):
        rows = [{"cost": 2.0}, {"cost": 4.0}]
        out = normalize(rows, "cost", reference=4.0)
        assert [r["cost_norm"] for r in out] == [0.5, 1.0]

    def test_original_rows_untouched(self):
        rows = [{"cost": 2.0}]
        normalize(rows, "cost", reference=2.0)
        assert "cost_norm" not in rows[0]

    def test_zero_reference_rejected(self):
        with pytest.raises(ZeroDivisionError):
            normalize([{"cost": 1.0}], "cost", reference=0.0)


class TestBenchConfig:
    def test_factories(self):
        config = BenchConfig(seed=3, num_samples=20, max_evaluations=50)
        deco = config.deco()
        assert deco.seed == 3
        assert deco.num_samples == 20
        sim = config.simulator()
        assert sim.catalog is config.catalog

    def test_deco_overrides(self):
        config = BenchConfig(seed=3)
        deco = config.deco(max_evaluations=99)
        assert deco._search.max_evaluations == 99

    def test_full_profile_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_FULL", raising=False)
        assert not is_full_profile()
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        assert is_full_profile()
        monkeypatch.setenv("REPRO_BENCH_FULL", "0")
        assert not is_full_profile()


class TestFormatTable:
    def test_column_alignment(self):
        text = format_table([{"name": "a", "value": 1.23456}], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in lines[3]  # 4 significant digits

    def test_booleans_rendered(self):
        text = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text
