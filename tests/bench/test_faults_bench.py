"""Smoke test for the fault ablation driver (tiny configuration)."""

import json

import pytest

from repro.bench import BenchConfig, bench_faults, write_bench_faults_json


@pytest.fixture(scope="module")
def config():
    return BenchConfig(seed=7, num_samples=40, max_evaluations=200)


@pytest.fixture(scope="module")
def rows(config):
    return bench_faults(
        config, workers=2, runs=8, degrees=1.0, failure_rate=0.12, max_retries=3
    )


class TestBenchFaults:
    def test_two_labeled_rows(self, rows):
        assert [r["plan"] for r in rows] == ["oblivious", "aware"]

    def test_rows_carry_fault_parameters(self, rows):
        for row in rows:
            assert row["failure_rate"] == 0.12
            assert row["max_retries"] == 3
            assert row["runs"] == 8

    def test_serial_parallel_identical(self, rows):
        assert all(row["identical"] for row in rows)

    def test_probabilities_are_fractions(self, rows):
        for row in rows:
            assert 0.0 <= row["p_deadline"] <= 1.0
            assert row["mean_attempts"] >= 1.0 or row["aborted"] == row["runs"]

    def test_payload_shape_and_roundtrip(self, rows, config, tmp_path):
        out = tmp_path / "BENCH_faults.json"
        payload = write_bench_faults_json(out, config, rows=rows)
        assert payload["benchmark"] == "fault_ablation"
        assert set(payload) >= {
            "p_deadline_oblivious",
            "p_deadline_aware",
            "aware_beats_oblivious",
            "identical",
            "rows",
        }
        assert json.loads(out.read_text()) == payload
