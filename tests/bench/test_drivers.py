"""Smoke + shape tests for the experiment drivers (tiny configurations).

The full experiments live in ``benchmarks/``; here each driver runs at
minimal scale and the *shape* assertions the paper's figures make are
checked where they are cheap enough to check deterministically.
"""

import pytest

from repro.bench import (
    BenchConfig,
    ablation_astar_pruning,
    ablation_probabilistic_vs_deterministic,
    ablation_search_seeds,
    fig01_instance_configs,
    fig02_runtime_variance,
    fig06_network_dynamics,
    fig07_network_histograms,
    fig09_ensemble_scores,
    fig10_follow_the_cost,
    fig11_deadline_sensitivity,
    format_table,
    optimization_overhead,
    solver_speedup,
    table2_io_distributions,
)


@pytest.fixture(scope="module")
def config():
    return BenchConfig(seed=7, num_samples=60, max_evaluations=300, runs_per_plan=3)


class TestFig01:
    @pytest.fixture(scope="class")
    def rows(self, config):
        return fig01_instance_configs(config)

    def test_seven_configurations(self, rows):
        assert {r["config"] for r in rows} == {
            "m1.small", "m1.medium", "m1.large", "m1.xlarge",
            "random", "autoscaling", "deco",
        }

    def test_deco_meets_deadline(self, rows):
        deco = next(r for r in rows if r["config"] == "deco")
        assert deco["meets_deadline"]

    def test_small_violates_deadline(self, rows):
        small = next(r for r in rows if r["config"] == "m1.small")
        assert not small["meets_deadline"]

    def test_deco_cheapest_feasible(self, rows):
        feasible = [r for r in rows if r["meets_deadline"]]
        deco = next(r for r in rows if r["config"] == "deco")
        assert deco["mean_cost"] == min(r["mean_cost"] for r in feasible)

    def test_deco_well_below_xlarge(self, rows):
        """The paper: Deco's cost is ~40% of m1.xlarge's."""
        deco = next(r for r in rows if r["config"] == "deco")
        assert deco["cost_norm"] < 0.6


class TestFig02:
    def test_variance_visible(self, config):
        rows = fig02_runtime_variance(config, degrees=(1.0,))
        row = rows[0]
        assert row["min"] < 1.0 < row["max"]
        assert row["spread"] > 0.02


class TestCalibrationFigures:
    def test_table2_families(self, config):
        rows = table2_io_distributions(config)
        assert all(r["seq_io_family"] == "gamma" for r in rows)
        assert all(r["rand_io_family"] == "normal" for r in rows)

    def test_fig06_normal_accepted(self, config):
        row = fig06_network_dynamics(config)
        assert row["normal_fit_accepted"]
        assert row["max_relative_variation"] > 0.5

    def test_fig07_link_ordering(self, config):
        rows = fig07_network_histograms(config)
        ll = next(r for r in rows if r["link"] == "m1.large<->m1.large")
        ml = next(r for r in rows if r["link"] == "m1.medium<->m1.large")
        assert ll["mean_mbps"] > ml["mean_mbps"]
        assert ll["cv"] < ml["cv"]


class TestFig09:
    def test_shapes(self, config):
        rows = fig09_ensemble_scores(config, kinds=("constant",), num_budgets=3)
        assert len(rows) == 3
        for r in rows:
            assert r["deco_score"] >= r["spss_score"] - 1e-9
        # At the max budget both admit everything affordable.
        last = rows[-1]
        assert last["deco_score"] >= last["spss_score"]


class TestFig10:
    def test_deco_no_worse_than_heuristic(self, config):
        out = fig10_follow_the_cost(config, degrees=(1.0,), thresholds=(0.5,))
        row = out["by_size"][0]
        assert row["deco_cost"] <= row["heuristic_cost"] * 1.05
        assert row["deco_cost"] <= row["static_cost"] * 1.02


class TestFig11:
    def test_cost_decreases_with_looser_deadline(self, config):
        rows = fig11_deadline_sensitivity(config, degrees=1.0)
        assert rows[0]["deadline"] == "tight"
        assert rows[0]["deco_expected_cost"] >= rows[-1]["deco_expected_cost"] - 1e-9

    def test_normalization_reference(self, config):
        rows = fig11_deadline_sensitivity(config, degrees=1.0)
        assert rows[0]["as_cost_norm"] == pytest.approx(1.0)


class TestPerf:
    def test_speedup_positive(self, config):
        rows = solver_speedup(config, degrees=(1.0,), batch=2, num_samples=20)
        assert rows[0]["speedup"] > 1.0

    def test_overhead_scales(self, config):
        rows = optimization_overhead(config, sizes=(20, 60))
        assert all(r["ms_per_task"] > 0 for r in rows)
        assert all(r["feasible"] for r in rows)


class TestAblations:
    def test_probabilistic_vs_deterministic(self, config):
        rows = ablation_probabilistic_vs_deterministic(config)
        prob = next(r for r in rows if r["notion"] == "probabilistic")
        det = next(r for r in rows if r["notion"] == "deterministic")
        assert prob["expected_cost"] >= det["expected_cost"] - 1e-9
        assert prob["deadline_hit_rate"] >= det["deadline_hit_rate"] - 1e-9

    def test_astar_prunes(self, config):
        rows = ablation_astar_pruning(config)
        astar = next(r for r in rows if r["variant"] == "astar")
        blind = next(r for r in rows if r["variant"] == "uninformed")
        assert astar["expanded"] <= blind["expanded"]
        assert astar["score"] == pytest.approx(blind["score"])

    def test_warm_start_not_worse(self, config):
        rows = ablation_search_seeds(config)
        cold = next(r for r in rows if r["variant"] == "cold")
        warm = next(r for r in rows if r["variant"] == "warm")
        if cold["feasible"] and warm["feasible"]:
            assert warm["cost"] <= cold["cost"] + 1e-9


class TestFormatting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": True}, {"a": 2.5, "b": False}], "T")
        assert "T" in text and "yes" in text and "2.5" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], "T")
