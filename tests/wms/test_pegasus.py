"""Tests for the WMS facade (Fig. 3's submit -> plan -> schedule -> execute)."""

import pytest

from repro.engine.deco import Deco
from repro.wms.pegasus import PegasusLite
from repro.wms.scheduler import DecoScheduler, FixedPlanScheduler, RandomScheduler
from repro.workflow.dax import write_dax
from repro.workflow.generators import montage


@pytest.fixture(scope="module")
def wf():
    return montage(degrees=1, seed=6)


class TestSubmit:
    def test_random_scheduler_end_to_end(self, wf, catalog):
        wms = PegasusLite(catalog, RandomScheduler(catalog, seed=1))
        result = wms.submit(wf)
        assert result.makespan > 0
        assert result.cost > 0
        assert len(result.events) >= 3 * len(wf)  # idle+running+done per task

    def test_dax_file_submission(self, wf, catalog, tmp_path):
        path = tmp_path / "montage.dax"
        write_dax(wf, path)
        wms = PegasusLite(catalog, FixedPlanScheduler({t: "m1.small" for t in wf.task_ids}))
        result = wms.submit(path)
        assert result.execution.workflow_name == wf.name

    def test_deco_scheduler_integration(self, wf, catalog):
        deco = Deco(catalog, seed=1, num_samples=50, max_evaluations=300)
        wms = PegasusLite(catalog, DecoScheduler(deco, deadline="medium"))
        result = wms.submit(wf)
        assert result.assignment() == dict(wms.scheduler.last_plan.assignment)

    def test_event_log_consistent_with_execution(self, wf, catalog):
        wms = PegasusLite(catalog, FixedPlanScheduler({t: "m1.medium" for t in wf.task_ids}))
        result = wms.submit(wf)
        done_times = {
            e.job_id: e.time for e in result.events if e.state.value == "done"
        }
        for rec in result.execution.task_records:
            assert done_times[rec.task_id] == pytest.approx(rec.finish)

    def test_region_affects_cost(self, wf, catalog):
        plan = {t: "m1.small" for t in wf.task_ids}
        wms = PegasusLite(catalog, FixedPlanScheduler(plan))
        us = wms.submit(wf, region="us-east-1")
        sg = wms.submit(wf, region="ap-southeast-1")
        assert sg.cost > us.cost

    def test_run_ids_vary_dynamics(self, wf, catalog):
        wms = PegasusLite(catalog, FixedPlanScheduler({t: "m1.small" for t in wf.task_ids}))
        a = wms.submit(wf, run_id=0)
        b = wms.submit(wf, run_id=1)
        assert a.makespan != b.makespan
