"""FAILED/HELD job states and DAGMan-style rescue semantics."""

import pytest

from repro.common.errors import ValidationError
from repro.wms.condor import CondorQueue, JobState


class TestFailureStates:
    def test_fail_and_retry_cycle(self, diamond):
        q = CondorQueue(diamond)
        q.start("a", 0.0)
        q.fail("a", 5.0)
        assert q.state("a") == JobState.FAILED
        assert q.jobs_in(JobState.FAILED) == ("a",)
        q.retry("a", 6.0)
        assert q.state("a") == JobState.IDLE
        q.start("a", 6.0)
        assert q.finish("a", 10.0)

    def test_fail_requires_running(self, diamond):
        q = CondorQueue(diamond)
        with pytest.raises(ValidationError):
            q.fail("a", 0.0)

    def test_hold_and_release(self, diamond):
        q = CondorQueue(diamond)
        q.hold("a", 1.0)
        assert q.state("a") == JobState.HELD
        with pytest.raises(ValidationError):
            q.start("a", 2.0)
        q.release("a", 3.0)
        assert q.state("a") == JobState.IDLE

    def test_held_failed_job(self, diamond):
        q = CondorQueue(diamond)
        q.start("a", 0.0)
        q.fail("a", 2.0)
        q.hold("a", 3.0)
        assert q.state("a") == JobState.HELD

    def test_stuck_detection(self, diamond):
        q = CondorQueue(diamond)
        assert not q.stuck
        q.start("a", 0.0)
        q.fail("a", 2.0)
        # Nothing idle or running: the state DAGMan writes a rescue in.
        assert q.stuck
        q.retry("a", 3.0)
        assert not q.stuck


class TestRescue:
    def finish(self, q, job, t):
        q.start(job, t)
        q.finish(job, t + 1.0)

    def test_rescue_records_done_set(self, diamond):
        q = CondorQueue(diamond)
        self.finish(q, "a", 0.0)
        self.finish(q, "b", 2.0)
        assert q.rescue() == frozenset({"a", "b"})

    def test_from_rescue_resumes_where_left_off(self, diamond):
        q = CondorQueue(diamond)
        self.finish(q, "a", 0.0)
        self.finish(q, "b", 2.0)
        resumed = CondorQueue.from_rescue(diamond, q.rescue())
        assert resumed.state("a") == JobState.DONE
        assert resumed.state("b") == JobState.DONE
        assert resumed.state("c") == JobState.IDLE
        assert resumed.state("d") == JobState.UNREADY
        self.finish(resumed, "c", 4.0)
        self.finish(resumed, "d", 6.0)
        assert resumed.all_done

    def test_from_rescue_empty_is_fresh(self, diamond):
        resumed = CondorQueue.from_rescue(diamond, frozenset())
        assert resumed.state("a") == JobState.IDLE
        assert resumed.state("d") == JobState.UNREADY

    def test_from_rescue_rejects_unknown_jobs(self, diamond):
        with pytest.raises(ValidationError):
            CondorQueue.from_rescue(diamond, frozenset({"zz"}))

    def test_from_rescue_rejects_orphan_done(self, diamond):
        # b done without its parent a: not a valid rescue state.
        with pytest.raises(ValidationError):
            CondorQueue.from_rescue(diamond, frozenset({"b"}))

    def test_replay_accepts_censored_runs(self, diamond):
        from types import SimpleNamespace

        rec = lambda tid, s, f: SimpleNamespace(task_id=tid, start=s, finish=f)  # noqa: E731
        q = CondorQueue(diamond)
        q.replay([rec("a", 0.0, 1.0), rec("b", 1.0, 3.0)])
        assert q.rescue() == frozenset({"a", "b"})
        assert not q.all_done

    def test_replay_resumed_run_skips_done_jobs(self, diamond):
        from types import SimpleNamespace

        rec = lambda tid, s, f: SimpleNamespace(task_id=tid, start=s, finish=f)  # noqa: E731
        q = CondorQueue.from_rescue(diamond, frozenset({"a", "b"}))
        q.replay([rec("a", 0.0, 1.0), rec("c", 0.0, 2.0), rec("d", 2.0, 4.0)])
        assert q.all_done
