"""Tests for the mapper and scheduler callouts."""

import pytest

from repro.common.errors import ValidationError
from repro.engine.deco import Deco
from repro.wms.mapper import Mapper
from repro.wms.scheduler import (
    AutoscalingScheduler,
    DecoScheduler,
    FixedPlanScheduler,
    RandomScheduler,
)
from repro.workflow.generators import montage, pipeline


@pytest.fixture(scope="module")
def wf():
    return montage(degrees=1, seed=4)


class TestMapper:
    def test_resolves_from_catalog(self):
        mapper = Mapper({"mProjectPP": "/opt/montage/bin/mProjectPP"})
        wf = montage(degrees=1, seed=0)
        executable = mapper.plan(wf)
        proj = next(j for j in executable.jobs.values() if j.task.executable == "mProjectPP")
        assert proj.executable_path == "/opt/montage/bin/mProjectPP"

    def test_default_prefix_fallback(self):
        executable = Mapper().plan(pipeline(2, seed=0))
        assert all(
            j.executable_path.startswith("/usr/local/bin/") for j in executable.jobs.values()
        )

    def test_unscheduled_assignment_rejected(self, wf):
        executable = Mapper().plan(wf)
        assert not executable.is_scheduled
        with pytest.raises(ValidationError):
            executable.assignment()

    def test_with_assignment_binds_sites(self, wf, catalog):
        executable = Mapper().plan(wf)
        bound = executable.with_assignment({t: "m1.small" for t in wf.task_ids})
        assert bound.is_scheduled
        assert set(bound.assignment().values()) == {"m1.small"}

    def test_partial_assignment_rejected(self, wf):
        executable = Mapper().plan(wf)
        with pytest.raises(ValidationError):
            executable.with_assignment({wf.task_ids[0]: "m1.small"})


class TestSchedulers:
    def test_random(self, wf, catalog):
        scheduled = RandomScheduler(catalog, seed=2).schedule(Mapper().plan(wf))
        assert scheduled.is_scheduled

    def test_fixed(self, wf):
        plan = {t: "m1.medium" for t in wf.task_ids}
        scheduled = FixedPlanScheduler(plan).schedule(Mapper().plan(wf))
        assert scheduled.assignment() == plan

    def test_fixed_empty_rejected(self):
        with pytest.raises(ValidationError):
            FixedPlanScheduler({})

    def test_autoscaling(self, wf, catalog, runtime_model):
        sched = AutoscalingScheduler(catalog, deadline=3600.0, runtime_model=runtime_model)
        assert sched.schedule(Mapper().plan(wf)).is_scheduled

    def test_deco_scheduler_records_plan(self, wf, catalog):
        deco = Deco(catalog, seed=1, num_samples=50, max_evaluations=200)
        sched = DecoScheduler(deco, deadline="medium")
        scheduled = sched.schedule(Mapper().plan(wf))
        assert scheduled.is_scheduled
        assert sched.last_plan is not None
        assert scheduled.assignment() == dict(sched.last_plan.assignment)
