"""Tests for the Condor/DAGMan-style job queue."""

import pytest

from repro.common.errors import ValidationError
from repro.wms.condor import CondorQueue, JobState


class TestLifecycle:
    def test_initial_states(self, diamond):
        q = CondorQueue(diamond)
        assert q.state("a") == JobState.IDLE
        assert q.state("b") == JobState.UNREADY
        assert q.idle_jobs() == ("a",)

    def test_start_finish_releases_children(self, diamond):
        q = CondorQueue(diamond)
        q.start("a", 0.0)
        released = q.finish("a", 10.0)
        assert set(released) == {"b", "c"}
        assert q.state("b") == JobState.IDLE

    def test_join_waits_for_all_parents(self, diamond):
        q = CondorQueue(diamond)
        q.start("a", 0.0)
        q.finish("a", 1.0)
        q.start("b", 1.0)
        q.start("c", 1.0)
        assert q.finish("b", 5.0) == ()  # c still running
        assert q.state("d") == JobState.UNREADY
        assert q.finish("c", 6.0) == ("d",)

    def test_cannot_start_unready(self, diamond):
        q = CondorQueue(diamond)
        with pytest.raises(ValidationError):
            q.start("d", 0.0)

    def test_cannot_start_twice(self, diamond):
        q = CondorQueue(diamond)
        q.start("a", 0.0)
        with pytest.raises(ValidationError):
            q.start("a", 1.0)

    def test_cannot_finish_idle(self, diamond):
        q = CondorQueue(diamond)
        with pytest.raises(ValidationError):
            q.finish("a", 1.0)

    def test_all_done(self, chain3):
        q = CondorQueue(chain3)
        t = 0.0
        for tid in chain3.task_ids:
            q.start(tid, t)
            t += 1.0
            q.finish(tid, t)
        assert q.all_done

    def test_counts(self, diamond):
        q = CondorQueue(diamond)
        q.start("a", 0.0)
        counts = q.counts()
        assert counts[JobState.RUNNING] == 1
        assert counts[JobState.UNREADY] == 3

    def test_unknown_job(self, diamond):
        with pytest.raises(ValidationError):
            CondorQueue(diamond).state("zz")


class TestEvents:
    def test_event_log_ordered(self, diamond):
        q = CondorQueue(diamond)
        q.start("a", 0.0)
        q.finish("a", 5.0)
        times = [e.time for e in q.events]
        assert times == sorted(times)

    def test_root_idle_events_at_time_zero(self, diamond):
        q = CondorQueue(diamond)
        roots = [e for e in q.events if e.state == JobState.IDLE]
        assert {e.job_id for e in roots} == {"a"}


class TestReplay:
    def test_replay_simulator_records(self, catalog, runtime_model, diamond):
        from repro.cloud.simulator import CloudSimulator
        from repro.common.rng import RngService

        sim = CloudSimulator(catalog, RngService(1), runtime_model)
        result = sim.execute(diamond, {t: "m1.small" for t in diamond.task_ids})
        q = CondorQueue(diamond)
        q.replay(result.task_records)  # must not raise
        assert q.all_done

    def test_replay_rejects_dependency_violation(self, diamond):
        from repro.cloud.simulator import TaskRecord

        bad = [
            TaskRecord(task_id="d", instance_id=0, instance_type="m1.small",
                       ready=0.0, start=0.0, finish=1.0),
        ]
        with pytest.raises(ValidationError):
            CondorQueue(diamond).replay(bad)

    def test_replay_handles_exact_time_ties(self, chain3):
        from repro.cloud.simulator import TaskRecord

        records = [
            TaskRecord("t0", 0, "m1.small", 0.0, 0.0, 5.0),
            TaskRecord("t1", 0, "m1.small", 5.0, 5.0, 9.0),
            TaskRecord("t2", 0, "m1.small", 9.0, 9.0, 12.0),
        ]
        q = CondorQueue(chain3)
        q.replay(records)
        assert q.all_done
