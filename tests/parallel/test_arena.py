"""Tests for the content-addressed shared-memory plane (repro.parallel.arena)."""

import numpy as np
import pytest

from repro.parallel.arena import (
    ArenaError,
    TensorArena,
    arena_available,
    attach_segment,
    content_key,
    publish_segment,
    segment_name,
    unlink_segment,
)

needs_shm = pytest.mark.skipif(
    not arena_available(), reason="POSIX shared memory unavailable in this sandbox"
)


def sample_arrays(seed: int = 0) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "means": rng.normal(size=(5, 3)),
        "edges": rng.integers(0, 5, size=(7, 2)).astype(np.int64),
        "scale": np.array([1.5]),
    }


@pytest.fixture
def published():
    """A sealed segment for sample_arrays(0); unlinked on teardown."""
    arrays = sample_arrays()
    key = content_key(arrays)
    shm = publish_segment(key, arrays, meta={"workflow": "montage-4"})
    yield key, arrays
    shm.close()
    unlink_segment(key)


class TestContentKey:
    def test_deterministic_and_order_insensitive(self):
        a = sample_arrays()
        same = {name: a[name] for name in reversed(sorted(a))}
        assert content_key(a) == content_key(same)
        assert len(content_key(a)) == 64  # hex sha256

    def test_sensitive_to_bytes_shape_dtype_name_extra(self):
        base = sample_arrays()
        key = content_key(base)

        flipped = sample_arrays()
        flipped["means"] = flipped["means"] + 1e-12
        assert content_key(flipped) != key

        reshaped = sample_arrays()
        reshaped["means"] = reshaped["means"].reshape(3, 5)
        assert content_key(reshaped) != key

        recast = sample_arrays()
        recast["edges"] = recast["edges"].astype(np.int32)
        assert content_key(recast) != key

        renamed = sample_arrays()
        renamed["means2"] = renamed.pop("means")
        assert content_key(renamed) != key

        assert content_key(base, extra=b"faults=1") != key

    def test_empty_array_is_hashable(self):
        key = content_key({"empty": np.empty((0, 4))})
        assert len(key) == 64


@needs_shm
class TestPublishAttach:
    def test_roundtrip_is_bitwise_and_zero_copy(self, published):
        key, arrays = published
        seg = attach_segment(key)
        try:
            assert set(seg.arrays) == set(arrays)
            for name, arr in arrays.items():
                got = seg.arrays[name]
                assert got.dtype == arr.dtype and got.shape == arr.shape
                np.testing.assert_array_equal(got, arr)
                # Zero-copy: the view aliases the mapping, read-only.
                assert not got.flags.writeable
                assert not got.flags.owndata
            assert seg.meta == {"workflow": "montage-4"}
        finally:
            seg.close()

    def test_double_publish_raises_file_exists(self, published):
        key, arrays = published
        with pytest.raises(FileExistsError):
            publish_segment(key, arrays)

    def test_attach_missing_key_raises(self):
        with pytest.raises(ArenaError, match="no shared segment"):
            attach_segment("f" * 64)

    def test_attach_unsealed_segment_raises(self):
        from multiprocessing import shared_memory

        key = "0" * 64
        # A publisher that died mid-write: header present, sealed == 0.
        shm = shared_memory.SharedMemory(
            name=segment_name(key), create=True, size=64
        )
        try:
            shm.buf[:8] = b"DECOARN1"
            with pytest.raises(ArenaError, match="not sealed"):
                attach_segment(key)
        finally:
            shm.close()
            shm.unlink()

    def test_attach_foreign_header_raises(self):
        from multiprocessing import shared_memory

        key = "1" * 64
        shm = shared_memory.SharedMemory(
            name=segment_name(key), create=True, size=64
        )
        try:
            shm.buf[:8] = b"NOTDECO!"
            with pytest.raises(ArenaError, match="foreign header"):
                attach_segment(key)
        finally:
            shm.close()
            shm.unlink()

    def test_unlink_segment_reports_outcome(self):
        arrays = sample_arrays(3)
        key = content_key(arrays)
        shm = publish_segment(key, arrays)
        shm.close()
        assert unlink_segment(key) is True
        assert unlink_segment(key) is False
        with pytest.raises(ArenaError):
            attach_segment(key)


@needs_shm
class TestTensorArena:
    def test_publish_is_idempotent_per_key(self):
        arena = TensorArena()
        try:
            arrays = sample_arrays(5)
            key = content_key(arrays)
            assert arena.publish(key, arrays)
            assert arena.publish(key, arrays)  # cached: no second segment
            assert key in arena
            stats = arena.stats()
            assert stats["publishes"] == 1
            assert stats["hits"] == 1
            assert stats["segments"] == 1
            assert stats["bytes_published"] > 0
        finally:
            arena.close()

    def test_lru_eviction_unlinks_oldest(self):
        arena = TensorArena(capacity=2)
        try:
            keys = []
            for seed in range(3):
                arrays = sample_arrays(10 + seed)
                key = content_key(arrays)
                keys.append(key)
                assert arena.publish(key, arrays)
            assert arena.stats()["evictions"] == 1
            assert keys[0] not in arena
            with pytest.raises(ArenaError):
                attach_segment(keys[0])  # evicted name is gone from the OS
            for key in keys[1:]:
                attach_segment(key).close()
        finally:
            arena.close()

    def test_adopts_foreign_segment_with_same_key(self):
        arrays = sample_arrays(20)
        key = content_key(arrays)
        shm = publish_segment(key, arrays)  # "another process" published it
        arena = TensorArena()
        try:
            assert arena.publish(key, arrays)
            assert arena.stats()["hits"] == 1
            assert arena.stats()["publishes"] == 0
        finally:
            arena.close()
            shm.close()
            unlink_segment(key)

    def test_close_unlinks_everything(self):
        arena = TensorArena()
        arrays = sample_arrays(30)
        key = content_key(arrays)
        arena.publish(key, arrays)
        arena.close()
        with pytest.raises(ArenaError):
            attach_segment(key)
        arena.close()  # idempotent


def test_arena_available_is_cached_bool():
    first = arena_available()
    assert isinstance(first, bool)
    assert arena_available() is first
