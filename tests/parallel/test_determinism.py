"""Determinism regression tests: worker count must never change results.

The contract: ``run_many``, ``member_plans`` and the bench drivers
produce byte-identical outputs for ``workers=1`` and ``workers=4`` with
the same seed, because every stochastic draw derives statelessly from
``(seed, path)`` and solves are cache-transparent.
"""

import dataclasses
import json

import pytest

from repro.cloud.instance_types import ec2_catalog
from repro.cloud.simulator import CloudSimulator
from repro.common.rng import RngService
from repro.engine.deco import Deco
from repro.engine.ensemble import EnsembleDriver
from repro.workflow.ensembles import make_ensemble
from repro.workflow.generators import montage
from repro.workflow.runtime_model import RuntimeModel


@pytest.fixture(scope="module")
def catalog():
    return ec2_catalog()


@pytest.fixture(scope="module")
def workflow():
    return montage(degrees=1.0, seed=7)


@pytest.fixture()
def simulator(catalog):
    return CloudSimulator(catalog, RngService(11), RuntimeModel(catalog))


def cheap_plan(workflow):
    return {tid: "m1.small" for tid in workflow.task_ids}


class TestRunManyDeterminism:
    def test_bit_identical_across_worker_counts(self, simulator, workflow):
        plan = cheap_plan(workflow)
        serial = simulator.run_many(workflow, plan, 8, workers=1)
        parallel = simulator.run_many(workflow, plan, 8, workers=4)
        assert serial == parallel  # full trace equality, record by record

    def test_summaries_byte_identical(self, simulator, workflow):
        plan = cheap_plan(workflow)
        dumps = []
        for workers in (1, 4):
            results = simulator.run_many(workflow, plan, 8, workers=workers)
            dumps.append(json.dumps(simulator.summarize(results), sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_failure_injection_identical(self, simulator, workflow):
        plan = cheap_plan(workflow)
        kwargs = dict(failure_rate=0.1, max_retries=50)
        serial = simulator.run_many(workflow, plan, 6, workers=1, **kwargs)
        parallel = simulator.run_many(workflow, plan, 6, workers=3, **kwargs)
        assert serial == parallel

    def test_consumed_parent_stream_does_not_leak(self, simulator, workflow):
        """Worker state is pristine even if the parent's RNG was used."""
        plan = cheap_plan(workflow)
        reference = simulator.run_many(workflow, plan, 4, workers=1)
        simulator.rngs.get("sim/unrelated").random(100)  # advance parent state
        assert simulator.run_many(workflow, plan, 4, workers=2) == reference

    def test_progress_final_call_exact(self, simulator, workflow):
        plan = cheap_plan(workflow)
        for workers in (1, 3):
            calls = []
            simulator.run_many(
                workflow, plan, 7, workers=workers,
                progress=lambda d, t: calls.append((d, t)),
            )
            assert calls[-1] == (7, 7)
            assert [d for d, _ in calls] == sorted(d for d, _ in calls)


class TestMemberPlansDeterminism:
    @pytest.fixture(scope="class")
    def driver(self, catalog):
        return EnsembleDriver(Deco(catalog, seed=7, num_samples=40, max_evaluations=150))

    @pytest.fixture(scope="class")
    def ensemble(self):
        return make_ensemble(
            "constant", montage, 4, sizes=(20,), seed=7
        ).with_constraints(
            budget=100.0, deadline_for=lambda m: 50_000.0, deadline_percentile=96.0
        )

    def test_byte_identical_across_worker_counts(self, driver, ensemble):
        dumps = []
        for workers in (1, 4):
            plans = driver.member_plans(ensemble, workers=workers)
            dumps.append(
                json.dumps(
                    {p: plan.decision_dict() for p, plan in plans.items()},
                    sort_keys=True,
                )
            )
        assert dumps[0] == dumps[1]

    def test_key_order_matches_priorities(self, driver, ensemble):
        plans = driver.member_plans(ensemble, workers=2)
        assert list(plans) == [m.priority for m in ensemble.by_priority()]


class TestDecoSpecRoundTrip:
    def test_spec_rebuilds_equivalent_engine(self, catalog, workflow):
        deco = Deco(
            catalog, seed=3, backend="gpu", num_samples=50, max_evaluations=200,
            beam_width=10, children_per_state=6, expand_per_iter=4,
        )
        rebuilt = Deco.from_spec(deco.spec())
        assert rebuilt.spec() == deco.spec()
        a = deco.schedule(workflow, "medium")
        b = rebuilt.schedule(workflow, "medium")
        assert a.decision_dict() == b.decision_dict()


class TestBenchDriverDeterminism:
    def test_fig02_byte_identical_across_worker_counts(self):
        from repro.bench import BenchConfig
        from repro.bench.fig02 import fig02_runtime_variance

        dumps = []
        for workers in (1, 4):
            config = BenchConfig(
                seed=7, num_samples=30, max_evaluations=60,
                runs_per_plan=2, workers=workers,
            )
            rows = fig02_runtime_variance(config, degrees=(1.0,))
            dumps.append(json.dumps(rows, sort_keys=True))
        assert dumps[0] == dumps[1]


class TestRngPristine:
    def test_pristine_resets_stream_state(self):
        rngs = RngService(5)
        first = rngs.get("a/b").random(4).tolist()
        assert rngs.get("a/b").random(4).tolist() != first  # state advanced
        assert rngs.pristine().get("a/b").random(4).tolist() == first

    def test_pristine_preserves_prefix(self):
        rngs = RngService(5)
        child = rngs.child("cloud").child("io")
        expected = rngs.fresh("cloud/io/net").random(3).tolist()
        assert child.pristine().fresh("net").random(3).tolist() == expected

    def test_execution_result_record_fields(self, simulator, workflow):
        """ExecutionResult equality covers the full trace (guard against
        dataclass field drift silently weakening the determinism tests)."""
        result = simulator.run_many(workflow, cheap_plan(workflow), 1)[0]
        fields = {f.name for f in dataclasses.fields(result)}
        assert {"makespan", "cost", "task_records", "instance_records"} <= fields
