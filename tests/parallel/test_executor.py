"""Tests for the worker-pool abstraction (repro.parallel.executor)."""

import concurrent.futures
import os

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.parallel import executor as executor_mod
from repro.parallel.executor import (
    ENV_WORKERS,
    ParallelExecutor,
    ShardPool,
    chunk_evenly,
    map_tasks,
    partition_weighted,
    resolve_workers,
    workers_from_env,
)

# Module-level so worker processes can unpickle them by reference.


def square(x):
    return x * x


def worker_pid(_):
    return os.getpid()


_CONTEXT = {}


def set_context(value):
    _CONTEXT["value"] = value


def read_context(x):
    return (_CONTEXT.get("value"), x)


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_workers(None) == 1

    def test_explicit_value(self, monkeypatch):
        # Pin the CPU count so a 1-core host doesn't also trip the
        # oversubscription warning (covered by its own test class).
        monkeypatch.setattr(executor_mod, "host_cpu_count", lambda: 4)
        assert resolve_workers(3) == 3

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "4", True])
    def test_rejects_non_positive_or_non_integer(self, bad):
        with pytest.raises(ValidationError):
            resolve_workers(bad)


class TestWorkersFromEnv:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert workers_from_env() == 1
        assert workers_from_env(default=5) == 5

    def test_positive_value(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "3")
        assert workers_from_env() == 3

    def test_zero_forces_serial(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "0")
        assert workers_from_env() == 1

    @pytest.mark.parametrize("bad", ["banana", "-2", "2.5"])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv(ENV_WORKERS, bad)
        with pytest.raises(ValidationError):
            workers_from_env()


class TestMapTasks:
    def test_serial_matches_parallel(self):
        items = list(range(17))
        serial = map_tasks(square, items, workers=1)
        parallel = map_tasks(square, items, workers=3)
        assert serial == parallel == [x * x for x in items]

    def test_results_in_input_order(self):
        items = list(range(32))
        assert map_tasks(square, items, workers=4) == [x * x for x in items]

    def test_parallel_uses_multiple_processes(self):
        pids = set(map_tasks(worker_pid, range(16), workers=2))
        # At least one task ran outside this process (scheduling may or
        # may not involve both workers on a loaded host).
        assert os.getpid() not in pids or len(pids) > 1

    def test_single_item_runs_serially(self):
        assert map_tasks(square, [7], workers=8) == [49]

    def test_progress_serial(self):
        calls = []
        map_tasks(square, range(5), workers=1, progress=lambda d, t: calls.append((d, t)))
        assert calls == [(i + 1, 5) for i in range(5)]

    def test_progress_parallel_reaches_total(self):
        calls = []
        map_tasks(square, range(6), workers=2, progress=lambda d, t: calls.append((d, t)))
        assert [d for d, _ in calls] == sorted(d for d, _ in calls)
        assert calls[-1] == (6, 6)

    def test_initializer_runs_in_serial_mode(self):
        executor = ParallelExecutor(1, initializer=set_context, initargs=(42,))
        assert executor.map_tasks(read_context, [1, 2]) == [(42, 1), (42, 2)]

    def test_initializer_runs_in_each_worker(self):
        executor = ParallelExecutor(2, initializer=set_context, initargs=(7,))
        out = executor.map_tasks(read_context, range(8))
        assert out == [(7, x) for x in range(8)]

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            map_tasks(_divide_by, [1, 0, 2], workers=2)


def _divide_by(x):
    return 1 // x


def _square_or_die(x):
    # Kills its worker process on the marker item -- but only inside a
    # pool worker, so the serial recovery rerun in the parent completes.
    import multiprocessing

    if x == "die" and multiprocessing.parent_process() is not None:
        os._exit(1)
    return 0 if x == "die" else x * x


class TestWorkerCrashRecovery:
    def test_killed_worker_recovers_serially_with_full_results(self):
        items = list(range(8)) + ["die"] + list(range(8, 11))
        expected = [_square_or_die(x) for x in items]
        # On a starved host the management thread may mark every future
        # broken before any completed result is drained; map_tasks then
        # classifies the breakage as environmental ("falling back to
        # serial") -- documented as indistinguishable.  Results are
        # identical either way, which is the contract under test.
        with pytest.warns(RuntimeWarning, match="died mid-map|falling back to serial"):
            out = map_tasks(_square_or_die, items, workers=2)
        assert out == expected

    def test_recovery_rerun_reruns_initializer(self):
        executor = ParallelExecutor(2, initializer=set_context, initargs=(9,))
        items = [0, 1, 2, 3, 4, 5, 6, 7, "die", 8]
        # Same zero-harvest caveat as above: either classification must
        # re-run the initializer before the serial rerun.
        with pytest.warns(RuntimeWarning, match="died mid-map|falling back to serial"):
            out = executor.map_tasks(_read_context_or_die, items)
        assert all(ctx == 9 for ctx, _ in out)
        assert [x for _, x in out] == items


def _read_context_or_die(x):
    import multiprocessing

    if x == "die" and multiprocessing.parent_process() is not None:
        os._exit(1)
    return (_CONTEXT.get("value"), x)


class TestSerialFallback:
    @pytest.fixture(autouse=True)
    def reset_warning_flag(self):
        executor_mod._warned_fallback = False
        yield
        executor_mod._warned_fallback = False

    def test_falls_back_with_single_warning(self, monkeypatch):
        def unavailable(*args, **kwargs):
            raise NotImplementedError("no process pools in this sandbox")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", unavailable)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            out = map_tasks(square, range(6), workers=4)
        assert out == [x * x for x in range(6)]
        # The downgrade warns exactly once per process, not per call.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert map_tasks(square, range(4), workers=4) == [0, 1, 4, 9]

    def test_fallback_preserves_initializer(self, monkeypatch):
        def unavailable(*args, **kwargs):
            raise OSError("fork blocked")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", unavailable)
        executor = ParallelExecutor(4, initializer=set_context, initargs=(11,))
        with pytest.warns(RuntimeWarning):
            assert executor.map_tasks(read_context, [5]* 2) == [(11, 5), (11, 5)]


def _context_square(x):
    # Pure function of (payload, replayed context): what shard jobs are.
    return (_CONTEXT.get("value"), x * x)


def _context_square_or_die(x):
    import multiprocessing

    if x == "die" and multiprocessing.parent_process() is not None:
        os._exit(1)
    return (_CONTEXT.get("value"), 0 if x == "die" else x * x)


class TestShardPool:
    def test_run_preserves_payload_order(self):
        pool = ShardPool(2)
        try:
            assert pool.run(square, [3, 5, 7]) == [9, 25, 49]
        finally:
            pool.close()

    def test_serial_pool_runs_inline(self):
        pool = ShardPool(1, initializer=set_context, initargs=(4,))
        try:
            assert pool.is_serial
            job = pool.submit(0, read_context, 6)
            assert job.done and job.future is None
            assert pool.gather([job]) == [(4, 6)]
        finally:
            pool.close()

    def test_shard_affinity_is_stable(self):
        pool = ShardPool(2)
        try:
            first = pool.run(worker_pid, [0, 1])
            second = pool.run(worker_pid, [0, 1])
            assert first == second  # shard i always lands on the same process
        finally:
            pool.close()

    def test_broadcast_prologue_reaches_every_shard(self):
        pool = ShardPool(2, initializer=set_context, initargs=(1,))
        try:
            pool.broadcast(set_context, 42)
            assert pool.run(_context_square, [2, 3]) == [(42, 4), (42, 9)]
            # A later broadcast replaces the prologue on every shard.
            pool.broadcast(set_context, 43)
            assert pool.run(_context_square, [2, 3]) == [(43, 4), (43, 9)]
        finally:
            pool.close()

    def test_prologue_replayed_on_respawned_shard(self):
        pool = ShardPool(2)
        try:
            pool.broadcast(set_context, 9)
            with pytest.warns(RuntimeWarning, match="beam shard"):
                out = pool.run(_context_square_or_die, ["die", 3])
            # The dead shard's chunk re-ran in-process against the
            # *replayed* prologue, so its context value is still 9.
            assert out == [(9, 0), (9, 9)]
            # Next use respawns the shard; the fresh worker replays the
            # prologue before its first real job.
            assert pool.run(_context_square, [2, 3]) == [(9, 4), (9, 9)]
        finally:
            pool.close()

    def test_submit_gather_split_keeps_submission_order(self):
        pool = ShardPool(2)
        try:
            jobs = [pool.submit(i, square, x) for i, x in enumerate([4, 5, 6])]
            assert pool.gather(jobs) == [16, 25, 36]  # shard index wraps: 6 -> shard 0
        finally:
            pool.close()

    def test_job_exception_surfaces_at_gather(self):
        pool = ShardPool(1)
        try:
            job = pool.submit(0, _divide_by, 0)
            with pytest.raises(ZeroDivisionError):
                pool.gather([job])
        finally:
            pool.close()

    def test_closed_pool_rejects_parallel_submit(self):
        pool = ShardPool(2)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(0, square, 1)

    def test_broadcast_stamp_skips_reserialization(self):
        pool = ShardPool(2, initializer=set_context, initargs=(0,))
        try:
            pool.broadcast(set_context, 21, stamp="ctx-a")
            first = dict(pool.counters)
            # Same stamp: nothing is pickled or shipped, only a counter.
            pool.broadcast(set_context, 21, stamp="ctx-a")
            assert pool.counters["broadcasts"] == first["broadcasts"]
            assert pool.counters["broadcast_skipped"] == first["broadcast_skipped"] + 1
            assert pool.counters["broadcast_bytes"] == first["broadcast_bytes"]
            # Workers still hold the broadcast context after the skip.
            assert pool.run(_context_square, [2, 3]) == [(21, 4), (21, 9)]
            # A new stamp replaces the prologue and pays for bytes again.
            pool.broadcast(set_context, 22, stamp="ctx-b")
            assert pool.counters["broadcasts"] == first["broadcasts"] + 1
            assert pool.counters["broadcast_bytes"] > first["broadcast_bytes"]
            assert pool.run(_context_square, [2, 3]) == [(22, 4), (22, 9)]
        finally:
            pool.close()

    def test_broadcast_without_stamp_never_skips(self):
        pool = ShardPool(1)
        try:
            pool.broadcast(set_context, 5)
            pool.broadcast(set_context, 5)
            assert pool.counters["broadcasts"] == 2
            assert pool.counters["broadcast_skipped"] == 0
        finally:
            pool.close()


class TestShardPoolFallback:
    @pytest.fixture(autouse=True)
    def reset_warning_flag(self):
        executor_mod._warned_fallback = False
        yield
        executor_mod._warned_fallback = False

    def test_downgrades_to_in_process_with_context(self, monkeypatch):
        def unavailable(*args, **kwargs):
            raise NotImplementedError("no process pools in this sandbox")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", unavailable)
        pool = ShardPool(3, initializer=set_context, initargs=(8,))
        try:
            with pytest.warns(RuntimeWarning, match="falling back to serial"):
                pool.broadcast(set_context, 12)
            assert pool.is_serial
            # Jobs keep working in-process against the broadcast context.
            assert pool.run(_context_square, [2, 3, 4]) == [(12, 4), (12, 9), (12, 16)]
        finally:
            pool.close()


class TestChunkEvenly:
    def test_balanced_contiguous(self):
        chunks = chunk_evenly(list(range(10)), 3)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_more_chunks_than_items(self):
        assert chunk_evenly([1, 2], 5) == [[1], [2]]

    def test_empty(self):
        assert chunk_evenly([], 3) == []

    def test_rejects_non_positive(self):
        with pytest.raises(ValidationError):
            chunk_evenly([1], 0)

    def test_flatten_preserves_order(self):
        items = list(range(23))
        flat = [x for chunk in chunk_evenly(items, 4) for x in chunk]
        assert flat == items


@given(
    n=st.integers(min_value=0, max_value=200),
    chunks=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=100, deadline=None)
def test_chunk_evenly_partitions_totally_and_in_order(n, chunks):
    items = list(range(n))
    out = chunk_evenly(items, chunks)
    # Total, order-preserving partition with no empty chunks and sizes
    # within one item of each other.
    assert [x for chunk in out for x in chunk] == items
    assert all(chunk for chunk in out)
    assert len(out) <= chunks
    if out:
        sizes = [len(chunk) for chunk in out]
        assert max(sizes) - min(sizes) <= 1


weight_values = st.one_of(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    # Degenerate weights the partitioner must sanitize to the mean.
    st.sampled_from([0.0, -1.0, float("nan"), float("inf")]),
)


@given(
    n=st.integers(min_value=0, max_value=200),
    weights=st.lists(weight_values, min_size=1, max_size=12),
)
@settings(max_examples=100, deadline=None)
def test_partition_weighted_is_total_ordered_and_quota_bounded(n, weights):
    import math

    items = list(range(n))
    out = partition_weighted(items, weights)
    # Total, order-preserving, exactly one (possibly empty) chunk per
    # weight -- slot alignment is what the shard-affine pool relies on.
    assert len(out) == len(weights)
    assert [x for chunk in out for x in chunk] == items
    # Every chunk within one item of its exact quota (after the same
    # degenerate-weight sanitization the partitioner applies).
    ws = [float(w) for w in weights]
    valid = [w for w in ws if math.isfinite(w) and w > 0.0]
    fallback = (sum(valid) / len(valid)) if valid else 1.0
    ws = [w if (math.isfinite(w) and w > 0.0) else fallback for w in ws]
    total = sum(ws)
    for chunk, w in zip(out, ws):
        assert abs(len(chunk) - n * w / total) <= 1.0


@given(
    n=st.integers(min_value=0, max_value=120),
    weights=st.lists(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
)
@settings(max_examples=60, deadline=None)
def test_partition_weighted_is_deterministic(n, weights):
    items = list(range(n))
    assert partition_weighted(items, weights) == partition_weighted(items, weights)


class TestPartitionWeighted:
    def test_rejects_empty_weights(self):
        with pytest.raises(ValidationError):
            partition_weighted([1, 2], [])

    def test_uniform_weights_match_even_quota(self):
        out = partition_weighted(list(range(10)), [1.0, 1.0, 1.0])
        assert [len(c) for c in out] == [4, 3, 3]
        assert [x for c in out for x in c] == list(range(10))

    def test_faster_shard_gets_more_items(self):
        out = partition_weighted(list(range(12)), [3.0, 1.0])
        assert len(out[0]) > len(out[1])
        assert [x for c in out for x in c] == list(range(12))

    def test_keeps_empty_chunk_slots(self):
        out = partition_weighted([1], [1.0, 1.0, 1.0])
        assert len(out) == 3
        assert sorted(len(c) for c in out) == [0, 0, 1]


class TestOversubscriptionWarning:
    @pytest.fixture(autouse=True)
    def reset_warning_flag(self):
        executor_mod._warned_oversubscription = False
        yield
        executor_mod._warned_oversubscription = False

    def test_warns_once_above_cpu_count(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "host_cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning, match="only 2 usable CPU"):
            assert resolve_workers(5) == 5
        # Once per process: the second oversubscribed resolve is silent.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_workers(5) == 5

    def test_no_warning_at_or_below_cpu_count(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "host_cpu_count", lambda: 4)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_workers(4) == 4
            assert resolve_workers(1) == 1

    def test_count_is_never_clamped(self, monkeypatch):
        # The warning is advisory: benchmarks measuring the oversubscribed
        # regime still get exactly the workers they asked for.
        monkeypatch.setattr(executor_mod, "host_cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning):
            assert resolve_workers(8) == 8
