"""Property tests for retry/backoff/checkpoint recovery models."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.faults import CheckpointModel, RecoveryPolicy


class TestCheckpointModel:
    def test_no_checkpoint_within_first_interval(self):
        cp = CheckpointModel(interval=100.0, overhead=5.0)
        assert cp.num_checkpoints(100.0) == 0
        assert cp.num_checkpoints(50.0) == 0
        assert cp.num_checkpoints(0.0) == 0

    def test_checkpoints_at_interior_boundaries(self):
        cp = CheckpointModel(interval=100.0, overhead=5.0)
        assert cp.num_checkpoints(250.0) == 2
        # Exactly 2 intervals -> one interior boundary, none at completion.
        assert cp.num_checkpoints(200.0) == 1

    def test_wall_time_adds_overhead(self):
        cp = CheckpointModel(interval=100.0, overhead=5.0)
        assert cp.wall_time(250.0) == pytest.approx(260.0)
        assert cp.wall_time(50.0) == pytest.approx(50.0)

    @pytest.mark.parametrize("elapsed,expected", [
        (0.0, 0.0), (104.0, 0.0), (105.0, 100.0), (200.0, 100.0), (210.0, 200.0),
    ])
    def test_surviving_work_steps_at_completed_checkpoints(self, elapsed, expected):
        cp = CheckpointModel(interval=100.0, overhead=5.0)
        assert cp.surviving_work(elapsed, work=1000.0) == pytest.approx(expected)

    def test_surviving_work_capped_at_attempt_work(self):
        cp = CheckpointModel(interval=100.0, overhead=0.0)
        assert cp.surviving_work(elapsed=900.0, work=150.0) == pytest.approx(150.0)

    def test_surviving_work_monotone_in_elapsed(self):
        cp = CheckpointModel(interval=30.0, overhead=3.0)
        values = [cp.surviving_work(t, work=500.0) for t in np.linspace(0, 600, 80)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_overhead_factor(self):
        assert CheckpointModel(100.0, overhead=5.0).overhead_factor == pytest.approx(1.05)
        assert CheckpointModel(100.0).overhead_factor == 1.0

    @pytest.mark.parametrize("kwargs", [
        dict(interval=0.0), dict(interval=-1.0),
        dict(interval=10.0, overhead=-1.0), dict(interval=10.0, restore=-1.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            CheckpointModel(**kwargs)


class TestBackoff:
    def test_zero_base_means_no_delay(self):
        policy = RecoveryPolicy()
        assert all(policy.backoff_delay(k) == 0.0 for k in range(1, 6))

    def test_exponential_growth(self):
        policy = RecoveryPolicy(backoff_base=10.0, backoff_factor=2.0, backoff_cap=1e9)
        assert [policy.backoff_delay(k) for k in (1, 2, 3, 4)] == [10.0, 20.0, 40.0, 80.0]

    def test_cap_bounds_delay(self):
        policy = RecoveryPolicy(backoff_base=10.0, backoff_factor=3.0, backoff_cap=50.0)
        delays = [policy.backoff_delay(k) for k in range(1, 10)]
        assert max(delays) == 50.0
        assert all(b >= a for a, b in zip(delays, delays[1:]))

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValidationError):
            RecoveryPolicy().backoff_delay(0)

    @pytest.mark.parametrize("kwargs", [
        dict(max_retries=-1), dict(backoff_base=-1.0),
        dict(backoff_factor=0.5), dict(backoff_cap=-1.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            RecoveryPolicy(**kwargs)


class TestAttemptWallTime:
    def test_no_checkpoint_is_identity(self):
        assert RecoveryPolicy().attempt_wall_time(123.0) == 123.0

    def test_checkpoint_overhead_and_restore(self):
        policy = RecoveryPolicy(
            checkpoint=CheckpointModel(interval=100.0, overhead=5.0, restore=7.0)
        )
        assert policy.attempt_wall_time(250.0) == pytest.approx(260.0)
        assert policy.attempt_wall_time(250.0, resuming=True) == pytest.approx(267.0)


class TestExpectedAttempts:
    @pytest.mark.parametrize("rate", [0.0, 0.05, 0.3, 0.7])
    @pytest.mark.parametrize("retries", [0, 1, 3, 10])
    def test_matches_bruteforce_geometric_sum(self, rate, retries):
        policy = RecoveryPolicy(max_retries=retries)
        expected = sum(rate**k for k in range(retries + 1))
        assert policy.expected_attempts(rate) == pytest.approx(expected)

    def test_matches_monte_carlo(self):
        policy = RecoveryPolicy(max_retries=3)
        rate = 0.3
        rng = np.random.default_rng(7)
        attempts = []
        for _ in range(20_000):
            n = 1
            while rng.random() < rate and n <= policy.max_retries:
                n += 1
            attempts.append(n)
        assert policy.expected_attempts(rate) == pytest.approx(
            float(np.mean(attempts)), rel=0.02
        )

    def test_success_probability_geometric_tail(self):
        policy = RecoveryPolicy(max_retries=2)
        assert policy.success_probability(0.5) == pytest.approx(1.0 - 0.5**3)
        assert policy.success_probability(0.0) == 1.0

    def test_more_retries_never_hurt(self):
        rate = 0.4
        probs = [RecoveryPolicy(max_retries=r).success_probability(rate) for r in range(6)]
        assert all(b >= a for a, b in zip(probs, probs[1:]))

    @pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5])
    def test_rate_validated(self, rate):
        with pytest.raises(ValidationError):
            RecoveryPolicy().expected_attempts(rate)
        with pytest.raises(ValidationError):
            RecoveryPolicy().success_probability(rate)
