"""Fault injection through the cloud simulator: crashes, spot, stragglers."""

import numpy as np
import pytest

from repro.cloud.simulator import CloudSimulator, InstanceRecord
from repro.common.errors import ExecutionAborted, ValidationError
from repro.common.rng import RngService
from repro.faults import CheckpointModel, FaultModel, RecoveryPolicy, SpotMarket


@pytest.fixture()
def sim(catalog, runtime_model):
    return CloudSimulator(catalog, RngService(11), runtime_model)


def uniform_plan(wf, type_name="m1.small"):
    return {tid: type_name for tid in wf.task_ids}


class TestZeroFaultEquivalence:
    def test_disabled_model_matches_baseline_bitwise(self, sim, diamond):
        plan = uniform_plan(diamond)
        baseline = sim.execute(diamond, plan, run_id=3)
        injected = sim.execute(
            diamond, plan, run_id=3, faults=FaultModel(), recovery=RecoveryPolicy()
        )
        assert injected == baseline

    def test_legacy_shim_equals_explicit_model(self, sim, diamond):
        plan = uniform_plan(diamond)
        legacy = sim.execute(diamond, plan, run_id=1, failure_rate=0.3, max_retries=5)
        explicit = sim.execute(
            diamond,
            plan,
            run_id=1,
            faults=FaultModel.from_legacy(0.3),
            recovery=RecoveryPolicy(max_retries=5),
        )
        assert explicit == legacy


class TestCrashes:
    def test_crashes_lengthen_makespan_but_complete(self, sim, diamond):
        plan = uniform_plan(diamond)
        baseline = sim.execute(diamond, plan, run_id=2)
        crashed = sim.execute(
            diamond,
            plan,
            run_id=2,
            faults=FaultModel(instance_mtbf=200.0),
            recovery=RecoveryPolicy(max_retries=50),
        )
        assert not crashed.aborted
        assert len(crashed.task_records) == len(diamond)
        assert crashed.makespan > baseline.makespan
        assert any(rec.crashed for rec in crashed.instance_records)

    def test_crashed_instances_never_reused(self, sim, diamond):
        result = sim.execute(
            diamond,
            uniform_plan(diamond),
            run_id=2,
            faults=FaultModel(instance_mtbf=200.0),
            recovery=RecoveryPolicy(max_retries=50),
        )
        for rec in result.instance_records:
            if rec.crashed:
                for tid in rec.tasks:
                    task = next(t for t in result.task_records if t.task_id == tid)
                    assert task.finish <= rec.released + 1e-9

    def test_dependencies_hold_under_crashes(self, sim, diamond):
        result = sim.execute(
            diamond,
            uniform_plan(diamond),
            run_id=5,
            faults=FaultModel(instance_mtbf=300.0, task_failure_rate=0.2),
            recovery=RecoveryPolicy(max_retries=50),
        )
        recs = {r.task_id: r for r in result.task_records}
        assert recs["d"].start >= max(recs["b"].finish, recs["c"].finish) - 1e-9

    def test_exhausted_retries_abort_with_context(self, sim, diamond):
        with pytest.raises(ExecutionAborted) as info:
            sim.execute(
                diamond,
                uniform_plan(diamond),
                run_id=0,
                faults=FaultModel(task_failure_rate=0.97),
                recovery=RecoveryPolicy(max_retries=1),
            )
        exc = info.value
        assert exc.task_id in diamond.task_ids
        assert exc.attempts == 2
        assert exc.sim_time > 0.0
        assert exc.partial_result is not None
        assert exc.partial_result.aborted
        assert len(exc.partial_result.task_records) < len(diamond)


class TestBackoffAndFreshResubmit:
    def test_backoff_delays_retries(self, sim, diamond):
        plan = uniform_plan(diamond)
        kwargs = dict(run_id=4, faults=FaultModel(task_failure_rate=0.5))
        quick = sim.execute(
            diamond, plan, recovery=RecoveryPolicy(max_retries=50), **kwargs
        )
        delayed = sim.execute(
            diamond,
            plan,
            recovery=RecoveryPolicy(max_retries=50, backoff_base=100.0),
            **kwargs,
        )
        assert delayed.makespan > quick.makespan

    def test_resubmit_fresh_avoids_failed_instance(self, sim, chain3):
        result = sim.execute(
            chain3,
            uniform_plan(chain3),
            run_id=4,
            faults=FaultModel(task_failure_rate=0.5),
            recovery=RecoveryPolicy(max_retries=50, resubmit_fresh=True),
        )
        retried = [r for r in result.task_records if r.attempts > 1]
        assert retried  # seed chosen so at least one task retries
        assert not result.aborted


class TestStragglers:
    def test_stragglers_lengthen_makespan(self, sim, diamond):
        plan = uniform_plan(diamond)
        baseline = sim.execute(diamond, plan, run_id=6)
        slowed = sim.execute(
            diamond,
            plan,
            run_id=6,
            faults=FaultModel(straggler_rate=0.9, straggler_slowdown=4.0),
        )
        assert slowed.makespan > baseline.makespan
        assert not slowed.aborted


class TestCheckpointing:
    def test_checkpointing_reduces_crash_rework(self, sim, diamond):
        plan = uniform_plan(diamond, "m1.small")
        faults = FaultModel(instance_mtbf=150.0)
        no_cp = RecoveryPolicy(max_retries=200)
        with_cp = RecoveryPolicy(
            max_retries=200, checkpoint=CheckpointModel(interval=10.0, overhead=0.0)
        )
        mean = lambda rec: float(  # noqa: E731
            np.mean(
                [
                    sim.execute(diamond, plan, run_id=r, faults=faults, recovery=rec).makespan
                    for r in range(12)
                ]
            )
        )
        assert mean(with_cp) < mean(no_cp)


class TestSpotExecution:
    def test_spot_instances_flagged_and_billed_from_market(self, sim, diamond):
        result = sim.execute(
            diamond,
            uniform_plan(diamond),
            run_id=1,
            faults=FaultModel(spot=SpotMarket(bid_fraction=1.2)),
            recovery=RecoveryPolicy(max_retries=50),
        )
        assert all(rec.spot for rec in result.instance_records)
        assert np.isfinite(result.cost)

    def test_low_bid_gets_revoked(self, sim, diamond):
        revoked = []
        for run_id in range(8):
            result = sim.execute(
                diamond,
                uniform_plan(diamond, "m1.large"),
                run_id=run_id,
                faults=FaultModel(spot=SpotMarket(bid_fraction=0.25)),
                recovery=RecoveryPolicy(max_retries=500),
            )
            revoked.extend(r for r in result.instance_records if r.revoked)
        assert revoked
        assert all(r.spot and not r.crashed for r in revoked)

    def test_revoked_partial_hour_is_free(self, sim):
        prices = np.array([0.1, 0.2, 0.3, 0.4])
        rec = InstanceRecord(0, "m1.small", "us-east", acquired=0.0, released=2.5 * 3600)
        rec.spot = True
        rec.revoked = True
        assert sim._instance_cost(rec, prices, "us-east") == pytest.approx(0.1 + 0.2)

    def test_user_released_pays_started_hour(self, sim):
        prices = np.array([0.1, 0.2, 0.3, 0.4])
        rec = InstanceRecord(0, "m1.small", "us-east", acquired=0.0, released=2.5 * 3600)
        rec.spot = True
        assert sim._instance_cost(rec, prices, "us-east") == pytest.approx(0.1 + 0.2 + 0.3)

    def test_billed_hours_property_floors_when_revoked(self):
        rec = InstanceRecord(0, "m1.small", "us-east", acquired=0.0, released=2.5 * 3600)
        rec.revoked = True
        assert rec.billed_hours == 2
        rec.revoked = False
        assert rec.billed_hours == 3


class TestOnAbort:
    @pytest.fixture()
    def aborting(self):
        # ~32% of runs complete (0.75**4 per-run success): seeds 0-11
        # produce both censored and completed outcomes.
        return dict(
            faults=FaultModel(task_failure_rate=0.5),
            recovery=RecoveryPolicy(max_retries=1),
        )

    def test_raise_propagates(self, sim, diamond, aborting):
        with pytest.raises(ExecutionAborted):
            sim.run_many(diamond, uniform_plan(diamond), 12, on_abort="raise", **aborting)

    def test_skip_drops_aborted_runs(self, sim, diamond, aborting):
        results = sim.run_many(
            diamond, uniform_plan(diamond), 12, on_abort="skip", **aborting
        )
        assert len(results) < 12
        assert all(not r.aborted for r in results)

    def test_record_keeps_censored_runs(self, sim, diamond, aborting):
        results = sim.run_many(
            diamond, uniform_plan(diamond), 12, on_abort="record", **aborting
        )
        assert len(results) == 12
        aborted = [r for r in results if r.aborted]
        assert aborted
        assert all(not r.meets_deadline(1e12) for r in aborted)
        summary = sim.summarize(results)
        assert summary["num_aborted"] == len(aborted)

    def test_invalid_mode_rejected(self, sim, diamond):
        with pytest.raises(ValidationError):
            sim.run_many(diamond, uniform_plan(diamond), 2, on_abort="explode")
