"""Tests for the declarative FaultModel and the spot-market hookup."""

import math

import numpy as np
import pytest

from repro.cloud.spot import SpotPriceProcess
from repro.common.errors import ValidationError
from repro.faults import CheckpointModel, FaultModel, RecoveryPolicy, SpotMarket


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(task_failure_rate=-0.1), dict(task_failure_rate=1.0),
        dict(instance_mtbf=0.0), dict(instance_mtbf=-5.0),
        dict(straggler_rate=1.0), dict(straggler_slowdown=0.5),
    ])
    def test_bad_fields_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            FaultModel(**kwargs)

    def test_spot_market_validation(self):
        with pytest.raises(ValidationError):
            SpotMarket(bid_fraction=0.0)
        with pytest.raises(ValidationError):
            SpotMarket(horizon_hours=0)


class TestClassification:
    def test_default_is_disabled(self):
        assert not FaultModel().enabled

    @pytest.mark.parametrize("kwargs", [
        dict(task_failure_rate=0.1), dict(instance_mtbf=1000.0),
        dict(straggler_rate=0.2), dict(spot=SpotMarket()),
    ])
    def test_any_source_enables(self, kwargs):
        assert FaultModel(**kwargs).enabled

    def test_from_legacy(self):
        fm = FaultModel.from_legacy(0.25)
        assert fm.task_failure_rate == 0.25
        assert not math.isfinite(fm.instance_mtbf)

    def test_describe_is_json_ready(self):
        import json

        assert json.dumps(FaultModel(task_failure_rate=0.1).describe())


class TestDraws:
    def test_disabled_knobs_consume_no_randomness(self):
        fm = FaultModel()
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        assert fm.attempt_fails(rng) is False
        assert fm.straggler_factor(rng) == 1.0
        assert fm.crash_time(0.0, rng) == math.inf
        assert rng.bit_generator.state == before

    def test_attempt_fails_tracks_rate(self):
        fm = FaultModel(task_failure_rate=0.3)
        rng = np.random.default_rng(5)
        freq = np.mean([fm.attempt_fails(rng) for _ in range(20_000)])
        assert freq == pytest.approx(0.3, abs=0.02)

    def test_straggler_factor_values(self):
        fm = FaultModel(straggler_rate=0.5, straggler_slowdown=3.0)
        rng = np.random.default_rng(5)
        factors = {fm.straggler_factor(rng) for _ in range(200)}
        assert factors == {1.0, 3.0}

    def test_crash_time_mean_is_mtbf(self):
        fm = FaultModel(instance_mtbf=500.0)
        rng = np.random.default_rng(5)
        times = [fm.crash_time(100.0, rng) - 100.0 for _ in range(20_000)]
        assert np.mean(times) == pytest.approx(500.0, rel=0.05)
        assert min(times) >= 0.0


class TestInflate:
    def test_no_faults_is_identity(self):
        t = np.array([10.0, 20.0, 30.0])
        out = FaultModel().inflate(t, RecoveryPolicy())
        np.testing.assert_allclose(out, t)

    def test_transient_rate_matches_expected_attempts(self):
        fm = FaultModel(task_failure_rate=0.2)
        policy = RecoveryPolicy(max_retries=3)
        t = np.array([100.0])
        out = fm.inflate(t, policy)
        assert out[0] == pytest.approx(100.0 * policy.expected_attempts(0.2))

    def test_straggler_expectation(self):
        fm = FaultModel(straggler_rate=0.1, straggler_slowdown=3.0)
        out = fm.inflate(np.array([100.0]), RecoveryPolicy())
        assert out[0] == pytest.approx(100.0 * 1.2)

    def test_checkpoint_overhead_factor(self):
        policy = RecoveryPolicy(checkpoint=CheckpointModel(interval=100.0, overhead=10.0))
        out = FaultModel(task_failure_rate=0.0).inflate(np.array([50.0]), policy)
        assert out[0] == pytest.approx(55.0)

    def test_crashes_inflate_more_for_longer_tasks(self):
        fm = FaultModel(instance_mtbf=3600.0)
        t = np.array([10.0, 1000.0])
        out = fm.inflate(t, RecoveryPolicy())
        assert np.all(out > t)
        assert out[1] / t[1] > out[0] / t[0]

    def test_spot_hazard_inflates(self):
        fm = FaultModel(spot=SpotMarket(bid_fraction=0.3))
        out = fm.inflate(np.array([1000.0]), RecoveryPolicy())
        assert out[0] > 1000.0

    def test_never_shrinks_and_preserves_input(self):
        fm = FaultModel(task_failure_rate=0.3, instance_mtbf=1e4, straggler_rate=0.2)
        t = np.linspace(1.0, 500.0, 40)
        snapshot = t.copy()
        out = fm.inflate(t, RecoveryPolicy(checkpoint=CheckpointModel(60.0, 2.0, 3.0)))
        assert np.all(out >= t)
        np.testing.assert_array_equal(t, snapshot)


class TestPlanSuccess:
    def test_power_of_task_success(self):
        fm = FaultModel(task_failure_rate=0.5)
        policy = RecoveryPolicy(max_retries=1)
        per_task = 1.0 - 0.5**2
        assert fm.plan_success_probability(4, policy) == pytest.approx(per_task**4)

    def test_zero_tasks_always_succeeds(self):
        assert FaultModel(task_failure_rate=0.9).plan_success_probability(
            0, RecoveryPolicy()
        ) == 1.0

    def test_negative_tasks_rejected(self):
        with pytest.raises(ValidationError):
            FaultModel().plan_success_probability(-1, RecoveryPolicy())


class TestSpotMarket:
    def test_revocation_hour_first_exceedance(self):
        prices = np.array([0.2, 0.3, 0.9, 0.1, 0.95])
        assert SpotMarket.revocation_hour(prices, bid=0.5) == 2
        assert SpotMarket.revocation_hour(prices, bid=1.0) is None

    def test_bid_scales_on_demand(self, catalog):
        market = SpotMarket(bid_fraction=0.5)
        proc = market.process_for(catalog, "m1.large")
        assert market.bid(proc) == pytest.approx(0.5 * proc.on_demand)

    def test_revocation_probability_bounds_and_monotonicity(self):
        proc = SpotPriceProcess(on_demand=1.0)
        probs = [
            SpotMarket(bid_fraction=f).revocation_probability_per_hour(proc)
            for f in (0.2, 0.35, 0.6, 1.0, 1.6)
        ]
        assert all(0.0 <= p <= 1.0 for p in probs)
        # Higher bids are revoked less often.
        assert all(b <= a for a, b in zip(probs, probs[1:]))

    def test_revocation_probability_matches_simulation(self):
        proc = SpotPriceProcess(on_demand=1.0)
        market = SpotMarket(bid_fraction=0.4)
        rng = np.random.default_rng(11)
        prices = proc.simulate(200_000, rng)
        empirical = float(np.mean(prices > market.bid(proc)))
        analytic = market.revocation_probability_per_hour(proc)
        # The analytic form ignores the [floor, cap] clamping; stay loose.
        assert analytic == pytest.approx(empirical, abs=0.05)
