"""Fault-injected runs must stay bit-identical at any worker count."""

import pytest

from repro.cloud.simulator import CloudSimulator
from repro.common.rng import RngService
from repro.engine.deco import Deco
from repro.engine.ensemble import EnsembleDriver
from repro.faults import FaultModel, RecoveryPolicy
from repro.workflow.ensembles import make_ensemble
from repro.workflow.generators import montage


@pytest.fixture()
def sim(catalog, runtime_model):
    return CloudSimulator(catalog, RngService(11), runtime_model)


def uniform_plan(wf, type_name="m1.small"):
    return {tid: type_name for tid in wf.task_ids}


class TestRunManyDeterminism:
    @pytest.mark.parametrize("on_abort", ["skip", "record"])
    def test_serial_equals_parallel(self, sim, diamond, on_abort):
        kwargs = dict(
            faults=FaultModel(
                task_failure_rate=0.4, instance_mtbf=2000.0, straggler_rate=0.1
            ),
            recovery=RecoveryPolicy(max_retries=2, backoff_base=5.0),
            on_abort=on_abort,
        )
        serial = sim.run_many(diamond, uniform_plan(diamond), 12, workers=1, **kwargs)
        parallel = sim.run_many(diamond, uniform_plan(diamond), 12, workers=3, **kwargs)
        assert serial == parallel

    def test_fault_stream_independent_of_performance_stream(self, sim, diamond):
        plan = uniform_plan(diamond)
        baseline = sim.execute(diamond, plan, run_id=9)
        injected = sim.execute(
            diamond,
            plan,
            run_id=9,
            faults=FaultModel(straggler_rate=0.5, straggler_slowdown=3.0),
        )
        # The same baseline draw underlies both runs: every injected task
        # duration is the baseline one or its straggler multiple.
        base = {r.task_id: r.duration for r in baseline.task_records}
        for rec in injected.task_records:
            ratio = rec.duration / base[rec.task_id]
            assert ratio == pytest.approx(1.0) or ratio == pytest.approx(3.0)


class TestMemberPlansDeterminism:
    def test_fault_aware_solves_identical_across_workers(self, catalog):
        deco = Deco(
            catalog,
            seed=3,
            num_samples=40,
            max_evaluations=150,
            faults=FaultModel(task_failure_rate=0.1),
            recovery=RecoveryPolicy(max_retries=2),
        )
        driver = EnsembleDriver(deco)
        ensemble = make_ensemble(
            "uniform_unsorted", montage, 4, sizes=(15, 30), seed=5
        ).with_constraints(
            budget=float("1e18"),
            deadline_for=lambda m: deco.presets(m.workflow).medium,
            deadline_percentile=96.0,
        )
        serial = driver.member_plans(ensemble, workers=1)
        parallel = driver.member_plans(ensemble, workers=2)
        assert {k: p.decision_dict() for k, p in serial.items()} == {
            k: p.decision_dict() for k, p in parallel.items()
        }
