"""Tests for the named random-stream service."""

import numpy as np

from repro.common.rng import RngService, spawn_rng


class TestSpawnRng:
    def test_same_seed_and_path_reproduce(self):
        a = spawn_rng(7, "cloud/io").normal(size=10)
        b = spawn_rng(7, "cloud/io").normal(size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_paths_decorrelate(self):
        a = spawn_rng(7, "cloud/io").normal(size=100)
        b = spawn_rng(7, "cloud/net").normal(size=100)
        assert not np.allclose(a, b)

    def test_different_seeds_decorrelate(self):
        a = spawn_rng(7, "x").normal(size=100)
        b = spawn_rng(8, "x").normal(size=100)
        assert not np.allclose(a, b)

    def test_path_segments_matter(self):
        a = spawn_rng(7, "a/b").normal(size=50)
        b = spawn_rng(7, "ab").normal(size=50)
        assert not np.allclose(a, b)


class TestRngService:
    def test_get_caches_stateful_generator(self):
        svc = RngService(3)
        g1 = svc.get("p")
        g1.normal(size=5)  # advance
        g2 = svc.get("p")
        assert g1 is g2

    def test_fresh_restarts_stream(self):
        svc = RngService(3)
        first = svc.get("p").normal(size=5)
        again = svc.fresh("p").normal(size=5)
        np.testing.assert_array_equal(first, again)

    def test_order_independence(self):
        """Consuming one stream must not perturb another."""
        svc_a = RngService(11)
        svc_a.get("noise").normal(size=1000)
        values_a = svc_a.get("signal").normal(size=10)

        svc_b = RngService(11)
        values_b = svc_b.get("signal").normal(size=10)
        np.testing.assert_array_equal(values_a, values_b)

    def test_child_prefixes_paths(self):
        svc = RngService(5)
        child = svc.child("cloud")
        a = child.get("io").normal(size=8)
        b = RngService(5).get("cloud/io").normal(size=8)
        np.testing.assert_array_equal(a, b)

    def test_nested_children(self):
        svc = RngService(5)
        nested = svc.child("a").child("b")
        x = nested.get("c").normal(size=4)
        y = RngService(5).get("a/b/c").normal(size=4)
        np.testing.assert_array_equal(x, y)

    def test_child_shares_cache_with_parent(self):
        svc = RngService(5)
        child = svc.child("cloud")
        g1 = child.get("io")
        g2 = svc.get("cloud/io")
        assert g1 is g2

    def test_paths_lists_materialized_streams(self):
        svc = RngService(1)
        svc.get("b")
        svc.get("a")
        assert list(svc.paths()) == ["a", "b"]

    def test_seed_masked_to_32_bits(self):
        # Huge seeds must not crash SeedSequence.
        svc = RngService(2**60 + 17)
        assert svc.get("x").normal() is not None
