"""Tests for time/money unit conversions and billing."""

import pytest

from repro.common.units import (
    SECONDS_PER_HOUR,
    billed_cost,
    billed_hours,
    fractional_cost,
    hours_to_seconds,
    seconds_to_hours,
)


class TestConversions:
    def test_roundtrip(self):
        assert seconds_to_hours(hours_to_seconds(2.5)) == pytest.approx(2.5)

    def test_seconds_per_hour(self):
        assert SECONDS_PER_HOUR == 3600.0

    def test_hours_to_seconds(self):
        assert hours_to_seconds(1.5) == 5400.0


class TestBilledHours:
    def test_zero_usage_bills_one_hour(self):
        # Acquiring an instance always starts a billing hour.
        assert billed_hours(0.0) == 1

    def test_exact_hour_boundary(self):
        assert billed_hours(3600.0) == 1

    def test_just_over_boundary(self):
        assert billed_hours(3600.001) == 2

    def test_many_hours(self):
        assert billed_hours(10 * 3600.0 - 1) == 10

    def test_negative_usage_rejected(self):
        with pytest.raises(ValueError):
            billed_hours(-1.0)


class TestCosts:
    def test_fractional_cost(self):
        assert fractional_cost(1800.0, 0.10) == pytest.approx(0.05)

    def test_fractional_cost_negative_rejected(self):
        with pytest.raises(ValueError):
            fractional_cost(-1.0, 0.1)

    def test_billed_cost_rounds_up(self):
        assert billed_cost(3700.0, 0.10) == pytest.approx(0.20)

    def test_billed_at_least_fractional(self):
        for seconds in (1.0, 1800.0, 3600.0, 5000.0, 86_400.0):
            assert billed_cost(seconds, 0.44) >= fractional_cost(seconds, 0.44) - 1e-12
