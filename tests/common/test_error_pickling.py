"""Pickle round-trip fidelity for the whole DecoError hierarchy.

Exceptions cross process-pool boundaries (worker -> parent) and land in
dead-letter records; a subclass that loses fields -- or worse, fails to
unpickle -- turns a diagnosable failure into a confusing one.
``BaseException.__reduce__`` reconstructs as ``cls(*args)`` and then
restores ``__dict__``, so the contract every subclass must keep is:
**every __init__ parameter after the message has a default**, and extra
state lives on the instance (not only in closure/args).

The parametrization walks ``repro.common.errors`` reflectively, so a
future subclass is covered the day it is added -- with a loud failure
here if it breaks the contract.
"""

from __future__ import annotations

import pickle

import pytest

from repro.common import errors as errors_module
from repro.common.errors import DecoError


def _all_error_classes() -> list[type]:
    """Every DecoError subclass defined in the errors module."""
    found = [
        obj
        for obj in vars(errors_module).values()
        if isinstance(obj, type) and issubclass(obj, DecoError)
    ]
    return sorted(found, key=lambda cls: cls.__name__)


#: Representative fully-populated instances, one per class.  A class
#: missing here fails test_every_error_class_has_a_sample below.
def _samples() -> dict[str, BaseException]:
    return {
        "DecoError": errors_module.DecoError("boom"),
        "ValidationError": errors_module.ValidationError("bad value: -1"),
        "CloudError": errors_module.CloudError("released instance twice"),
        "ExecutionAborted": errors_module.ExecutionAborted(
            "task t3 exhausted retries",
            task_id="t3",
            attempts=4,
            sim_time=1234.5,
            task_records=({"task": "t1"}, {"task": "t2"}),
            partial_result={"makespan": 99.0},
        ),
        "WLogError": errors_module.WLogError("wlog layer failure"),
        "WLogSyntaxError": errors_module.WLogSyntaxError(
            "unexpected token ')'", line=3, column=14, source="a.\nb.\nc(x)).\n"
        ),
        "WLogAnalysisError": errors_module.WLogAnalysisError(
            "2 diagnostics", diagnostics=("E101", "E203")
        ),
        "WLogRuntimeError": errors_module.WLogRuntimeError("unbound variable X"),
        "SolverError": errors_module.SolverError("unknown backend 'tpu'"),
        "InfeasibleError": errors_module.InfeasibleError("deadline below Dmin"),
        "ServiceError": errors_module.ServiceError("dispatcher wedged"),
        "JournalCorrupt": errors_module.JournalCorrupt(
            "bad record", path="/var/lib/deco/jobs.jsonl", line_number=17
        ),
        "AdmissionError": errors_module.AdmissionError(
            "queue full", reason="queue_full", retry_after_s=5.5
        ),
        "JobNotFound": errors_module.JobNotFound("no such job", job_id="job-123"),
    }


@pytest.mark.parametrize(
    "cls", _all_error_classes(), ids=lambda cls: cls.__name__
)
class TestPickleRoundTrip:
    def test_round_trip_preserves_everything(self, cls):
        sample = _samples()[cls.__name__]
        clone = pickle.loads(pickle.dumps(sample))
        assert type(clone) is type(sample)
        assert clone.args == sample.args
        assert str(clone) == str(sample)
        # Every attribute the constructor stored must survive.
        assert vars(clone) == vars(sample)

    def test_message_only_construction_survives(self, cls):
        """cls(*args) with just a message must work -- that is exactly what
        unpickling runs, whatever extra kwargs the original had."""
        if cls.__name__ == "ExecutionAborted":
            instance = cls("msg")  # kw-only extras all defaulted
        else:
            instance = cls("msg")
        clone = pickle.loads(pickle.dumps(instance))
        assert str(clone) == str(instance)

    def test_survives_highest_protocol(self, cls):
        sample = _samples()[cls.__name__]
        clone = pickle.loads(pickle.dumps(sample, protocol=pickle.HIGHEST_PROTOCOL))
        assert vars(clone) == vars(sample)


def test_every_error_class_has_a_sample():
    """A new DecoError subclass must add a fully-populated sample above."""
    missing = {cls.__name__ for cls in _all_error_classes()} - set(_samples())
    assert not missing, (
        f"add pickle-fidelity samples for new error classes: {sorted(missing)}"
    )


def test_catching_by_base_class_survives_pickling():
    """A rethrown unpickled ServiceError is still a DecoError (dead-letter
    handling and the CLI's exit-code mapping both rely on isinstance)."""
    clone = pickle.loads(
        pickle.dumps(errors_module.AdmissionError("x", reason="rate_limited"))
    )
    assert isinstance(clone, errors_module.ServiceError)
    assert isinstance(clone, DecoError)
    assert clone.reason == "rate_limited"
