"""Tests for plan JSON serialization and the networkx export."""

import networkx as nx
import pytest

from repro.common.errors import ValidationError
from repro.engine.plan import ProvisioningPlan
from repro.workflow.generators import montage, pipeline


def make_plan():
    return ProvisioningPlan(
        workflow_name="montage-1",
        assignment={"ID0": "m1.small", "ID1": "m1.large"},
        expected_cost=0.123,
        probability=0.97,
        feasible=True,
        deadline=3600.0,
        deadline_percentile=96.0,
        evaluations=500,
        solve_seconds=0.25,
        backend="gpu",
    )


class TestPlanJson:
    def test_roundtrip(self):
        plan = make_plan()
        back = ProvisioningPlan.from_json(plan.to_json())
        assert back == plan

    def test_json_is_stable(self):
        plan = make_plan()
        assert plan.to_json() == plan.to_json()

    def test_malformed_rejected(self):
        with pytest.raises(ValidationError):
            ProvisioningPlan.from_json('{"workflow_name": "x"}')

    def test_non_object_rejected(self):
        with pytest.raises(ValidationError):
            ProvisioningPlan.from_json("[1, 2]")

    def test_assignment_survives(self):
        back = ProvisioningPlan.from_json(make_plan().to_json())
        assert back.assignment["ID1"] == "m1.large"


class TestNetworkxExport:
    def test_structure_preserved(self):
        wf = montage(degrees=1, seed=0)
        g = wf.to_networkx()
        assert g.number_of_nodes() == len(wf)
        assert g.number_of_edges() == wf.num_edges()
        assert nx.is_directed_acyclic_graph(g)

    def test_node_attributes(self):
        wf = pipeline(3, seed=0)
        g = wf.to_networkx()
        tid = wf.task_ids[0]
        assert g.nodes[tid]["executable"] == "process1"
        assert g.nodes[tid]["runtime_ref"] == wf.task(tid).runtime_ref

    def test_edge_transfer_bytes(self):
        wf = pipeline(2, seed=0, data_mb=100.0)
        g = wf.to_networkx()
        (edge,) = g.edges(data=True)
        assert edge[2]["transfer_bytes"] == wf.transfer_bytes(edge[0], edge[1])

    def test_topological_sort_agrees(self):
        wf = montage(degrees=1, seed=0)
        order = {t: i for i, t in enumerate(nx.topological_sort(wf.to_networkx()))}
        for parent, child in wf.edges():
            assert order[parent] < order[child]
