"""Tests for provisioning plans and deadline presets."""

import pytest

from repro.common.errors import ValidationError
from repro.engine.plan import DeadlinePresets, ProvisioningPlan, deadline_presets
from repro.workflow.generators import montage


class TestProvisioningPlan:
    def _plan(self, **overrides):
        kwargs = dict(
            workflow_name="wf",
            assignment={"a": "m1.small", "b": "m1.large", "c": "m1.small"},
            expected_cost=1.5,
            probability=0.97,
            feasible=True,
            deadline=100.0,
            deadline_percentile=96.0,
            solve_seconds=0.3,
        )
        kwargs.update(overrides)
        return ProvisioningPlan(**kwargs)

    def test_type_counts(self):
        assert self._plan().type_counts() == {"m1.large": 1, "m1.small": 2}

    def test_overhead_per_task(self):
        assert self._plan().overhead_ms_per_task() == pytest.approx(100.0)

    def test_overhead_empty_plan(self):
        assert self._plan(assignment={}).overhead_ms_per_task() == 0.0

    def test_assignment_copied(self):
        src = {"a": "m1.small"}
        plan = self._plan(assignment=src)
        src["a"] = "m1.xlarge"
        assert plan.assignment["a"] == "m1.small"


class TestDeadlinePresets:
    def test_ordering(self):
        p = DeadlinePresets(dmin=100.0, dmax=1000.0)
        assert p.tight == 150.0
        assert p.medium == 550.0
        assert p.loose == 750.0
        assert p.tight < p.medium < p.loose

    def test_get(self):
        p = DeadlinePresets(dmin=100.0, dmax=1000.0)
        assert p.get("tight") == p.tight
        with pytest.raises(ValidationError):
            p.get("impossible")

    def test_computed_from_workflow(self, catalog, runtime_model):
        wf = montage(degrees=1, seed=0)
        p = deadline_presets(wf, catalog, runtime_model)
        assert 0 < p.dmin < p.dmax
        # Dmin is the fastest type's critical path; it must beat Dmax.
        assert p.tight < p.loose
