"""Tests for the follow-the-cost driver (use case 3)."""

import pytest

from repro.common.errors import ValidationError
from repro.engine.followcost import FollowCostDriver, WorkflowDeployment
from repro.workflow.generators import ligo, montage


@pytest.fixture(scope="module")
def driver(catalog, runtime_model):
    return FollowCostDriver(catalog, seed=2, period=900.0, runtime_model=runtime_model)


def make_deployment(catalog, runtime_model, region, generator=ligo, size=40, seed=0,
                    type_name="m1.medium", slack=2.0):
    wf = generator(num_tasks=size, seed=seed) if generator is ligo else generator(degrees=1, seed=seed)
    assignment = {tid: type_name for tid in wf.task_ids}
    serial = sum(runtime_model.mean(wf.task(t), type_name) for t in wf.task_ids)
    return WorkflowDeployment(
        workflow=wf, assignment=assignment, region=region, deadline=serial * slack
    )


class TestDeployment:
    def test_missing_assignment_rejected(self, catalog):
        wf = ligo(20, seed=0)
        with pytest.raises(ValidationError):
            WorkflowDeployment(workflow=wf, assignment={}, region="us-east-1", deadline=10.0)

    def test_bad_deadline_rejected(self, catalog, runtime_model):
        wf = ligo(20, seed=0)
        with pytest.raises(ValidationError):
            WorkflowDeployment(
                workflow=wf,
                assignment={t: "m1.small" for t in wf.task_ids},
                region="us-east-1",
                deadline=0.0,
            )


class TestPolicies:
    @pytest.fixture(scope="class")
    def fleet(self, catalog, runtime_model):
        return [
            make_deployment(catalog, runtime_model, "ap-southeast-1", seed=1),
            make_deployment(catalog, runtime_model, "us-east-1", seed=2),
        ]

    def test_all_policies_complete(self, driver, fleet):
        for policy in ("deco", "heuristic", "static"):
            result = driver.run(fleet, policy=policy)
            assert all(m > 0 for m in result.makespans)
            assert result.total_cost > 0

    def test_static_never_migrates(self, driver, fleet):
        assert driver.run(fleet, policy="static").num_migrations == 0

    def test_migration_exploits_price_difference(self, driver, fleet):
        """CPU-bound Ligo in Singapore should move to the cheaper US East."""
        result = driver.run(fleet, policy="deco")
        assert result.num_migrations >= 1

    def test_deco_not_worse_than_static(self, driver, fleet):
        deco = driver.run(fleet, policy="deco")
        static = driver.run(fleet, policy="static")
        assert deco.total_cost <= static.total_cost * 1.02

    def test_costs_decompose(self, driver, fleet):
        result = driver.run(fleet, policy="deco")
        assert result.total_cost == pytest.approx(result.exec_cost + result.migration_cost)

    def test_unknown_policy_rejected(self, driver, fleet):
        with pytest.raises(ValidationError):
            driver.run(fleet, policy="oracle")

    def test_bad_threshold_rejected(self, driver, fleet):
        with pytest.raises(ValidationError):
            driver.run(fleet, policy="heuristic", threshold=0.0)

    def test_reproducible(self, catalog, runtime_model, fleet):
        a = FollowCostDriver(catalog, seed=5, runtime_model=runtime_model).run(fleet)
        b = FollowCostDriver(catalog, seed=5, runtime_model=runtime_model).run(fleet)
        assert a.total_cost == b.total_cost


class TestTypeAdaptation:
    def test_loose_deadline_enables_demotion(self, catalog, runtime_model, driver):
        """An I/O-bound Montage fleet on pricey types with huge slack:
        Deco's runtime type re-optimization must cut cost below static."""
        dep = make_deployment(
            catalog, runtime_model, "us-east-1", generator=montage,
            type_name="m1.xlarge", slack=4.0,
        )
        deco = driver.run([dep], policy="deco")
        static = driver.run([dep], policy="static")
        assert deco.exec_cost < static.exec_cost * 0.9

    def test_deadline_still_met_after_adaptation(self, catalog, runtime_model, driver):
        dep = make_deployment(
            catalog, runtime_model, "us-east-1", generator=montage,
            type_name="m1.xlarge", slack=4.0,
        )
        result = driver.run([dep], policy="deco")
        assert result.deadlines_met == 1


class TestValidation:
    def test_bad_period_rejected(self, catalog):
        with pytest.raises(ValidationError):
            FollowCostDriver(catalog, period=0.0)
