"""Tests for the WLog -> compiled-problem lowering."""

import pytest

from repro.common.errors import WLogError
from repro.engine.compiler import compile_or_raise, try_compile
from repro.wlog.imports import ImportRegistry
from repro.wlog.library import scheduling_program
from repro.wlog.probir import translate
from repro.wlog.program import WLogProgram
from repro.workflow.generators import pipeline


@pytest.fixture()
def registry(catalog):
    reg = ImportRegistry()
    reg.register_cloud("amazonec2", catalog)
    reg.register_workflow("montage", pipeline(3, seed=0))
    return reg


def ir_for(src, registry):
    return translate(WLogProgram.from_source(src), registry)


class TestTryCompile:
    def test_example1_compiles(self, registry):
        ir = ir_for(scheduling_program(percentile=92, deadline_seconds=1234.0), registry)
        problem = try_compile(ir, num_samples=8)
        assert problem is not None
        assert problem.deadline == 1234.0
        assert problem.required_probability == pytest.approx(0.92)
        assert problem.num_tasks == 3

    def test_maximize_goal_rejected(self, registry):
        src = scheduling_program().replace("minimize", "maximize")
        assert try_compile(ir_for(src, registry)) is None

    def test_missing_deadline_rejected(self, registry):
        src = scheduling_program()
        src = "\n".join(l for l in src.splitlines() if not l.startswith("cons"))
        assert try_compile(ir_for(src, registry)) is None

    def test_missing_cloud_rejected(self, registry):
        src = scheduling_program().replace("import(amazonec2).", "")
        assert try_compile(ir_for(src, registry)) is None

    def test_missing_workflow_rejected(self, registry):
        src = scheduling_program().replace("import(montage).", "")
        assert try_compile(ir_for(src, registry)) is None

    def test_foreign_goal_predicate_rejected(self, registry):
        src = scheduling_program().replace("totalcost(Ct)", "megacost(Ct)")
        assert try_compile(ir_for(src, registry)) is None

    def test_compile_or_raise_message(self, registry):
        src = scheduling_program().replace("minimize", "maximize")
        with pytest.raises(WLogError, match="compilable scheduling pattern"):
            compile_or_raise(ir_for(src, registry))


class TestFaultAwareCompile:
    def faulty_src(self, **kwargs):
        defaults = dict(
            failure_rate=0.05,
            mtbf_seconds=36_000.0,
            reliability_percentile=99.0,
            max_retries=3,
        )
        defaults.update(kwargs)
        return scheduling_program(**defaults)

    def test_fault_model_and_reliability_compile(self, registry):
        problem = try_compile(ir_for(self.faulty_src(), registry), num_samples=8)
        assert problem is not None
        assert problem.faults is not None
        assert problem.faults.task_failure_rate == 0.05
        assert problem.recovery.max_retries == 3
        assert problem.reliability_required == pytest.approx(0.99)
        assert problem.plan_success_probability > 0.99

    def test_fault_tensor_is_inflated(self, registry):
        plain = try_compile(ir_for(scheduling_program(), registry), num_samples=8)
        faulty = try_compile(ir_for(self.faulty_src(), registry), num_samples=8)
        assert (faulty.tensor > plain.tensor).all()
        assert (faulty.mean_times > plain.mean_times).all()

    def test_fault_model_without_reliability_compiles(self, registry):
        src = self.faulty_src(reliability_percentile=None)
        problem = try_compile(ir_for(src, registry), num_samples=8)
        assert problem is not None
        assert problem.faults is not None
        assert problem.reliability_required == 0.0

    def test_plain_program_has_no_faults(self, registry):
        problem = try_compile(ir_for(scheduling_program(), registry), num_samples=8)
        assert problem.faults is None
        assert problem.plan_success_probability == 1.0

    def test_reliability_without_fault_model_rejected(self, registry):
        src = "\n".join(
            l
            for l in self.faulty_src().splitlines()
            if not l.startswith("fault_model")
        )
        assert try_compile(ir_for(src, registry)) is None

    def test_two_non_reliability_constraints_still_rejected(self, registry):
        src = scheduling_program() + "\ncons B in totalcost(B) satisfies budget(100.0, 1).\n"
        assert try_compile(ir_for(src, registry)) is None

    def test_region_override(self, registry, catalog):
        ir = ir_for(scheduling_program(), registry)
        us = try_compile(ir, num_samples=4)
        sg = try_compile(ir, num_samples=4, region="ap-southeast-1")
        assert sg.prices[0] > us.prices[0]
