"""Tests for the WLog -> compiled-problem lowering."""

import pytest

from repro.common.errors import WLogError
from repro.engine.compiler import compile_or_raise, try_compile
from repro.wlog.imports import ImportRegistry
from repro.wlog.library import scheduling_program
from repro.wlog.probir import translate
from repro.wlog.program import WLogProgram
from repro.workflow.generators import pipeline


@pytest.fixture()
def registry(catalog):
    reg = ImportRegistry()
    reg.register_cloud("amazonec2", catalog)
    reg.register_workflow("montage", pipeline(3, seed=0))
    return reg


def ir_for(src, registry):
    return translate(WLogProgram.from_source(src), registry)


class TestTryCompile:
    def test_example1_compiles(self, registry):
        ir = ir_for(scheduling_program(percentile=92, deadline_seconds=1234.0), registry)
        problem = try_compile(ir, num_samples=8)
        assert problem is not None
        assert problem.deadline == 1234.0
        assert problem.required_probability == pytest.approx(0.92)
        assert problem.num_tasks == 3

    def test_maximize_goal_rejected(self, registry):
        src = scheduling_program().replace("minimize", "maximize")
        assert try_compile(ir_for(src, registry)) is None

    def test_missing_deadline_rejected(self, registry):
        src = scheduling_program()
        src = "\n".join(l for l in src.splitlines() if not l.startswith("cons"))
        assert try_compile(ir_for(src, registry)) is None

    def test_missing_cloud_rejected(self, registry):
        src = scheduling_program().replace("import(amazonec2).", "")
        assert try_compile(ir_for(src, registry)) is None

    def test_missing_workflow_rejected(self, registry):
        src = scheduling_program().replace("import(montage).", "")
        assert try_compile(ir_for(src, registry)) is None

    def test_foreign_goal_predicate_rejected(self, registry):
        src = scheduling_program().replace("totalcost(Ct)", "megacost(Ct)")
        assert try_compile(ir_for(src, registry)) is None

    def test_compile_or_raise_message(self, registry):
        src = scheduling_program().replace("minimize", "maximize")
        with pytest.raises(WLogError, match="compilable scheduling pattern"):
            compile_or_raise(ir_for(src, registry))

    def test_region_override(self, registry, catalog):
        ir = ir_for(scheduling_program(), registry)
        us = try_compile(ir, num_samples=4)
        sg = try_compile(ir, num_samples=4, region="ap-southeast-1")
        assert sg.prices[0] > us.prices[0]
