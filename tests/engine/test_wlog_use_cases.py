"""The declarative (WLog-interpreted) paths for use cases 2 and 3.

The library programs for ensemble admission and follow-the-cost are
executed through the Prolog engine here, and their decisions are
cross-checked against the compiled/direct drivers.
"""

import pytest

import repro.engine.followcost as fc
from repro.engine.deco import Deco
from repro.engine.ensemble import EnsembleDriver
from repro.engine.followcost import FollowCostDriver, WorkflowDeployment
from repro.workflow.ensembles import Ensemble, make_ensemble
from repro.workflow.generators import ligo, montage


@pytest.fixture(scope="module")
def driver(catalog):
    return EnsembleDriver(Deco(catalog, seed=13, num_samples=60, max_evaluations=300))


@pytest.fixture(scope="module")
def ensemble(driver):
    base = make_ensemble("uniform_unsorted", montage, 5, sizes=(20, 40), seed=13)
    deco = driver.deco
    return base.with_constraints(
        budget=1e18,
        deadline_for=lambda m: deco.presets(m.workflow).medium,
        deadline_percentile=96.0,
    )


@pytest.fixture(scope="module")
def plans(driver, ensemble):
    return driver.member_plans(ensemble)


class TestEnsembleViaWLog:
    def test_program_evaluates_subsets(self, driver, ensemble, plans):
        ens = Ensemble(ensemble.name, ensemble.members, budget=100.0)
        score, cost, admissible = driver.evaluate_admission_wlog(
            ens, plans, frozenset({0, 1})
        )
        assert score == pytest.approx(1.5)
        assert cost == pytest.approx(
            plans[0].expected_cost + plans[1].expected_cost, rel=1e-9
        )
        assert admissible

    def test_empty_subset(self, driver, ensemble, plans):
        ens = Ensemble(ensemble.name, ensemble.members, budget=1.0)
        score, cost, admissible = driver.evaluate_admission_wlog(ens, plans, frozenset())
        assert score == 0.0
        assert cost == 0.0
        assert admissible

    def test_budget_violation_detected(self, driver, ensemble, plans):
        total = sum(p.expected_cost for p in plans.values())
        ens = Ensemble(ensemble.name, ensemble.members, budget=total / 10)
        all_of_them = frozenset(p for p in plans)
        _, _, admissible = driver.evaluate_admission_wlog(ens, plans, all_of_them)
        assert not admissible

    def test_wlog_decision_matches_compiled(self, driver, ensemble, plans):
        total = sum(p.expected_cost for p in plans.values())
        for frac in (0.3, 0.6, 1.0):
            ens = Ensemble(ensemble.name, ensemble.members, budget=total * frac)
            compiled = driver.decide(ens, plans=plans)
            declarative = driver.decide_via_wlog(ens, plans=plans)
            assert declarative.total_score == pytest.approx(compiled.total_score)
            assert declarative.admitted_priorities == compiled.admitted_priorities

    def test_infeasible_members_never_admitted(self, driver, ensemble, plans):
        # Force one member infeasible by faking its plan.
        import dataclasses

        rigged = dict(plans)
        rigged[0] = dataclasses.replace(plans[0], feasible=False)
        ens = Ensemble(ensemble.name, ensemble.members, budget=1e6)
        decision = driver.decide_via_wlog(ens, plans=rigged)
        assert 0 not in decision.admitted_priorities


class TestFollowCostViaWLog:
    @pytest.fixture(scope="class")
    def fc_driver(self, catalog, runtime_model):
        return FollowCostDriver(catalog, seed=3, runtime_model=runtime_model)

    def _state(self, catalog, runtime_model, region, slack=2.0, generator=ligo):
        wf = generator(num_tasks=40, seed=4) if generator is ligo else generator(degrees=1, seed=4)
        assignment = {t: "m1.medium" for t in wf.task_ids}
        serial = sum(runtime_model.mean(wf.task(t), "m1.medium") for t in wf.task_ids)
        dep = WorkflowDeployment(
            workflow=wf, assignment=assignment, region=region, deadline=serial * slack
        )
        return fc._RunState(deployment=dep, region=region)

    def test_wlog_matches_direct_argmin(self, fc_driver, catalog, runtime_model):
        for region in catalog.region_names:
            st = self._state(catalog, runtime_model, region)
            assert fc_driver.wlog_choose_region(st) == fc_driver._best_region(st)

    def test_expensive_region_migrates(self, fc_driver, catalog, runtime_model):
        st = self._state(catalog, runtime_model, "ap-southeast-1")
        assert fc_driver.wlog_choose_region(st) == "us-east-1"

    def test_cheap_region_stays(self, fc_driver, catalog, runtime_model):
        st = self._state(catalog, runtime_model, "us-east-1")
        assert fc_driver.wlog_choose_region(st) == "us-east-1"

    def test_deadline_blocks_migration(self, fc_driver, catalog, runtime_model):
        """With no slack left, the WLog 'ontime' constraint pins the
        workflow in place even when another region is cheaper."""
        st = self._state(catalog, runtime_model, "ap-southeast-1", slack=1.0)
        # Partway through with the clock nearly at the deadline.
        st.clock = st.deployment.deadline * 0.99
        assert fc_driver.wlog_choose_region(st) == "ap-southeast-1"

    def test_facts_shape(self, fc_driver, catalog, runtime_model):
        st = self._state(catalog, runtime_model, "us-east-1")
        rules = fc_driver.wlog_facts(st, chosen_region="us-east-1")
        indicators = {r.indicator for r in rules}
        assert ("wexeccost", 3) in indicators
        assert ("wmigcost", 3) in indicators
        assert ("wruntime", 3) in indicators
        assert ("wregion", 3) in indicators
