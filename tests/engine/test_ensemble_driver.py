"""Tests for ensemble admission (use case 2)."""

import pytest

from repro.common.errors import ValidationError
from repro.engine.deco import Deco
from repro.engine.ensemble import EnsembleDriver
from repro.workflow.ensembles import Ensemble, make_ensemble
from repro.workflow.generators import montage


@pytest.fixture(scope="module")
def driver(catalog):
    return EnsembleDriver(Deco(catalog, seed=3, num_samples=60, max_evaluations=300))


@pytest.fixture(scope="module")
def ensemble(catalog, driver):
    base = make_ensemble("uniform_unsorted", montage, 5, sizes=(20, 40), seed=5)
    deco = driver.deco

    def deadline_for(member):
        return deco.presets(member.workflow).medium

    return base.with_constraints(
        budget=float("1e18"), deadline_for=deadline_for, deadline_percentile=96.0
    )


@pytest.fixture(scope="module")
def plans(driver, ensemble):
    return driver.member_plans(ensemble)


class TestMemberPlans:
    def test_plan_per_member(self, plans, ensemble):
        assert set(plans) == {m.priority for m in ensemble.members}

    def test_plans_meet_member_deadlines(self, plans):
        assert all(p.feasible for p in plans.values())


class TestDecide:
    def test_infinite_budget_rejected(self, driver, ensemble, plans):
        unbounded = Ensemble(ensemble.name, ensemble.members, budget=float("inf"))
        with pytest.raises(ValidationError):
            driver.decide(unbounded, plans=plans)

    def test_huge_budget_admits_everything(self, driver, ensemble, plans):
        ens = Ensemble(ensemble.name, ensemble.members, budget=1e9)
        decision = driver.decide(ens, plans=plans)
        assert decision.num_admitted == len(ensemble)
        assert decision.total_score == pytest.approx(ens.max_score())

    def test_budget_respected(self, driver, ensemble, plans):
        total = sum(p.expected_cost for p in plans.values())
        ens = Ensemble(ensemble.name, ensemble.members, budget=total / 2)
        decision = driver.decide(ens, plans=plans)
        assert decision.total_cost <= ens.budget + 1e-9

    def test_tiny_budget_admits_nothing_or_cheapest(self, driver, ensemble, plans):
        cheapest = min(p.expected_cost for p in plans.values())
        ens = Ensemble(ensemble.name, ensemble.members, budget=cheapest * 0.5)
        decision = driver.decide(ens, plans=plans)
        assert decision.num_admitted == 0

    def test_admission_is_score_optimal(self, driver, ensemble, plans):
        """Brute-force cross-check of the A* decision on 5 members."""
        import itertools

        costs = {p: plans[p].expected_cost for p in plans if plans[p].feasible}
        ens = Ensemble(
            ensemble.name, ensemble.members, budget=sum(costs.values()) * 0.6
        )
        decision = driver.decide(ens, plans=plans)
        best = 0.0
        for r in range(len(costs) + 1):
            for subset in itertools.combinations(costs, r):
                if sum(costs[p] for p in subset) <= ens.budget:
                    best = max(best, sum(2.0 ** (-p) for p in subset))
        assert decision.total_score == pytest.approx(best)

    def test_priority_zero_preferred(self, driver, ensemble, plans):
        """Score 2^0 beats all others combined; priority 0 is admitted
        whenever it fits alone."""
        cost0 = plans[0].expected_cost
        ens = Ensemble(ensemble.name, ensemble.members, budget=cost0 * 1.01)
        decision = driver.decide(ens, plans=plans)
        if plans[0].feasible:
            assert 0 in decision.admitted_priorities

    def test_outcomes_cover_all_members(self, driver, ensemble, plans):
        ens = Ensemble(ensemble.name, ensemble.members, budget=1.0)
        decision = driver.decide(ens, plans=plans)
        assert len(decision.outcomes) == len(ensemble)
        admitted = {o.member.priority for o in decision.outcomes if o.admitted}
        assert admitted == set(decision.admitted_priorities)


class TestRecordAndSkip:
    @pytest.fixture(scope="class")
    def driver(self, catalog):
        # require_feasible makes an unmeetable deadline raise
        # InfeasibleError instead of returning an infeasible plan.
        return EnsembleDriver(
            Deco(
                catalog,
                seed=3,
                num_samples=40,
                max_evaluations=150,
                require_feasible=True,
            )
        )

    @pytest.fixture(scope="class")
    def poisoned(self, driver):
        """An ensemble whose priority-1 member has an unsolvable deadline."""
        base = make_ensemble("uniform_unsorted", montage, 3, sizes=(15, 25), seed=9)
        deco = driver.deco

        def deadline_for(member):
            if member.priority == 1:
                return 1e-6  # no plan can finish this fast: InfeasibleError
            return deco.presets(member.workflow).medium

        return base.with_constraints(
            budget=float("1e18"), deadline_for=deadline_for, deadline_percentile=96.0
        )

    def test_record_skips_failed_member(self, driver, poisoned):
        plans = driver.member_plans(poisoned, on_error="record")
        assert set(plans) == {0, 1, 2}
        assert plans[1] is None
        assert plans[0] is not None and plans[2] is not None

    def test_raise_propagates(self, driver, poisoned):
        from repro.common.errors import DecoError

        with pytest.raises(DecoError):
            driver.member_plans(poisoned, on_error="raise")

    def test_invalid_on_error_rejected(self, driver, poisoned):
        with pytest.raises(ValidationError):
            driver.member_plans(poisoned, on_error="explode")

    def test_failed_member_never_admitted_but_visible(self, driver, poisoned):
        plans = driver.member_plans(poisoned, on_error="record")
        ens = Ensemble(poisoned.name, poisoned.members, budget=1e9)
        decision = driver.decide(ens, plans=plans)
        assert 1 not in decision.admitted_priorities
        failed = next(o for o in decision.outcomes if o.member.priority == 1)
        assert failed.plan is None and not failed.admitted

    def test_record_identical_across_workers(self, driver, poisoned):
        serial = driver.member_plans(poisoned, workers=1, on_error="record")
        parallel = driver.member_plans(poisoned, workers=2, on_error="record")
        as_dict = lambda plans: {  # noqa: E731
            k: (p.decision_dict() if p is not None else None) for k, p in plans.items()
        }
        assert as_dict(serial) == as_dict(parallel)
