"""Solve watchdog: wall-clock budgets return the best incumbent.

Acceptance contract (service robustness PR): an *ample* budget must not
perturb the search at all -- the plan is bit-identical to the unbounded
solve with ``timed_out=False`` -- while an *undersized* budget returns
a feasible incumbent early with ``timed_out=True`` instead of wedging.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.engine.deco import Deco
from repro.workflow.generators import montage

ENGINE_KW = dict(seed=7, num_samples=60, max_evaluations=150)


@pytest.fixture(scope="module")
def wf():
    return montage(degrees=1, seed=2)


@pytest.fixture(scope="module")
def unbounded(catalog, wf):
    with Deco(catalog, **ENGINE_KW) as deco:
        return deco.schedule(wf, "medium")


class TestAmpleBudget:
    def test_bit_identical_to_unbounded(self, catalog, wf, unbounded):
        with Deco(catalog, **ENGINE_KW) as deco:
            plan = deco.schedule(wf, "medium", solve_deadline_s=1e6)
        assert not plan.timed_out
        assert plan.decision_dict() == unbounded.decision_dict()

    def test_engine_default_applies_to_every_solve(self, catalog, wf, unbounded):
        with Deco(catalog, solve_deadline_s=1e6, **ENGINE_KW) as deco:
            plan = deco.schedule(wf, "medium")
        assert not plan.timed_out
        assert plan.decision_dict() == unbounded.decision_dict()

    def test_per_call_overrides_engine_default(self, catalog, wf, unbounded):
        # Undersized engine default, ample per-call budget: the call
        # wins, so the solve runs to convergence.
        with Deco(catalog, solve_deadline_s=1e-6, **ENGINE_KW) as deco:
            plan = deco.schedule(wf, "medium", solve_deadline_s=1e6)
        assert not plan.timed_out
        assert plan.decision_dict() == unbounded.decision_dict()


class TestUndersizedBudget:
    def test_returns_feasible_incumbent_flagged(self, catalog, wf):
        with Deco(catalog, **ENGINE_KW) as deco:
            plan = deco.schedule(wf, "medium", solve_deadline_s=1e-6)
        assert plan.timed_out
        # Degraded, not broken: a usable plan with honest numbers.
        assert plan.feasible
        assert plan.expected_cost > 0
        assert plan.assignment

    def test_timed_out_excluded_from_decision_identity(self, catalog, wf, unbounded):
        """decision_dict() compares *decisions*; the watchdog flag (like
        solve_seconds) is telemetry and must not break plan equality
        when a timed-out solve happens to land on the same incumbent."""
        with Deco(catalog, **ENGINE_KW) as deco:
            plan = deco.schedule(wf, "medium", solve_deadline_s=1e-6)
        assert "timed_out" not in plan.decision_dict()
        assert plan.timed_out is True
        assert unbounded.timed_out is False


class TestValidation:
    def test_constructor_rejects_nonpositive(self, catalog):
        for bad in (0, -1.5):
            with pytest.raises(ValidationError, match="solve_deadline_s"):
                Deco(catalog, solve_deadline_s=bad, **ENGINE_KW)

    def test_schedule_rejects_nonpositive(self, catalog, wf):
        with Deco(catalog, **ENGINE_KW) as deco:
            with pytest.raises(ValidationError):
                deco.schedule(wf, "medium", solve_deadline_s=0)

    def test_spec_round_trips_watchdog(self, catalog):
        deco = Deco(catalog, solve_deadline_s=12.5, **ENGINE_KW)
        spec = deco.spec()
        clone = Deco.from_spec(spec)
        try:
            assert clone.solve_deadline_s == 12.5
        finally:
            clone.close()
            deco.close()
