"""Engine/pool lifecycle hardening: idempotent close, exit-safe teardown.

Long-running services open and close engines repeatedly and cannot
afford teardown that raises, leaks processes, or spews warnings at
interpreter exit -- these tests pin all of it.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
import warnings

from repro.engine.deco import Deco
from repro.parallel.executor import ShardPool
from repro.workflow.generators import montage

ENGINE_KW = dict(
    seed=7, num_samples=40, max_evaluations=100,
    beam_width=6, children_per_state=4, expand_per_iter=3,
)


def _noop_init(_spec=None) -> None:
    return None


def _echo(payload):
    return payload


class TestDecoClose:
    def test_double_close_is_silent(self, catalog):
        with warnings.catch_warnings():
            warnings.filterwarnings(
                "ignore", message="requested .* worker", category=RuntimeWarning
            )
            deco = Deco(catalog, workers=2, **ENGINE_KW)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            deco.close()
            deco.close()

    def test_close_without_ever_solving(self, catalog):
        Deco(catalog, workers=2, **ENGINE_KW).close()

    def test_close_then_reuse_rebuilds_pool(self, catalog):
        wf = montage(degrees=1.0, seed=7)
        with warnings.catch_warnings():
            warnings.filterwarnings(
                "ignore", message="requested .* worker", category=RuntimeWarning
            )
            deco = Deco(catalog, workers=2, **ENGINE_KW)
            before = deco.schedule(wf, "medium")
            deco.close()
            after = deco.schedule(wf, "medium")  # lazily rebuilt pool
            deco.close()
        assert before.decision_dict() == after.decision_dict()

    def test_context_manager_reentry(self, catalog):
        wf = montage(degrees=1.0, seed=7)
        deco = Deco(catalog, workers=2, **ENGINE_KW)
        with warnings.catch_warnings():
            warnings.filterwarnings(
                "ignore", message="requested .* worker", category=RuntimeWarning
            )
            with deco as engine:
                first = engine.schedule(wf, "medium")
            with deco as engine:  # re-entering after __exit__ closed the pool
                second = engine.schedule(wf, "medium")
        assert first.decision_dict() == second.decision_dict()


class TestShardPoolClose:
    def test_close_idempotent_and_reentrant(self):
        pool = ShardPool(2, initializer=_noop_init, initargs=({},))
        pool.run(_echo, [1, 2])
        pool.close()
        pool.close()
        pool.close_executors()  # post-close explicit teardown also fine

    def test_respawn_unspawned_shard_is_safe(self):
        pool = ShardPool(2, initializer=_noop_init, initargs=({},))
        pool.respawn(0)
        pool.respawn(5)  # wraps modulo workers
        pool.close()

    def test_worker_pids_reports_down_shards(self):
        pool = ShardPool(2, initializer=_noop_init, initargs=({},))
        assert pool.worker_pids() == [None, None]  # nothing spawned yet
        pool.run(_echo, [1, 2])
        if not pool.is_serial:
            assert any(pid is not None for pid in pool.worker_pids())
        pool.close()
        assert pool.worker_pids() == [None, None]


class TestInterpreterExit:
    """Teardown with live pools must not raise, warn, or hang at exit."""

    def _run(self, body: str) -> subprocess.CompletedProcess:
        import os
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        code = textwrap.dedent(body)
        env = dict(os.environ, PYTHONPATH=str(repo_root / "src"))
        return subprocess.run(
            [sys.executable, "-W", "error::ResourceWarning", "-c", code],
            capture_output=True,
            text=True,
            timeout=240,
            env=env,
            cwd=str(repo_root),
        )

    def test_abandoned_deco_pool_exits_clean(self):
        result = self._run(
            """
            import warnings
            warnings.filterwarnings("ignore", message="requested .* worker")
            from repro.cloud import ec2_catalog
            from repro.engine.deco import Deco
            from repro.workflow.generators import montage

            deco = Deco(ec2_catalog(), workers=2, seed=7, num_samples=40,
                        max_evaluations=100, beam_width=6,
                        children_per_state=4, expand_per_iter=3)
            plan = deco.schedule(montage(degrees=1.0, seed=7), "medium")
            assert plan.feasible
            print("OK")
            # no close(): the weakref finalizer must tear the pool down
            """
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        assert "Exception" not in result.stderr
        assert "Error" not in result.stderr

    def test_abandoned_service_exits_clean(self):
        result = self._run(
            """
            import tempfile, os, warnings
            warnings.filterwarnings("ignore", message="requested .* worker")
            from repro.service import DecoService, ServiceConfig

            svc = DecoService(ServiceConfig(
                journal_path=os.path.join(tempfile.mkdtemp(), "j.jsonl"),
                workers=2,
                engine={"seed": 7, "num_samples": 40, "max_evaluations": 100,
                        "beam_width": 6, "children_per_state": 4,
                        "expand_per_iter": 3},
            ))
            job = svc.submit({"workflow": {"app": "montage", "degrees": 1.0,
                                           "seed": 7}})
            svc.run_until_idle(timeout_s=120)
            assert svc.job_status(job.job_id)["state"] == "completed"
            print("OK")
            # no close(): journal handle + worker pool torn down at exit
            """
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        assert "Exception" not in result.stderr
