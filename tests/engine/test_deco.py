"""Tests for the Deco facade (use case 1)."""

import pytest

from repro.common.errors import InfeasibleError, ValidationError
from repro.engine.deco import Deco
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.wlog.imports import ImportRegistry
from repro.wlog.library import scheduling_program
from repro.workflow.generators import montage, pipeline


@pytest.fixture(scope="module")
def deco(catalog):
    return Deco(catalog, seed=1, num_samples=100, max_evaluations=800)


@pytest.fixture(scope="module")
def wf():
    return montage(degrees=1, seed=2)


class TestSchedule:
    def test_returns_feasible_plan(self, deco, wf):
        plan = deco.schedule(wf, "medium")
        assert plan.feasible
        assert plan.probability >= 0.96 - 1e-9
        assert set(plan.assignment) == set(wf.task_ids)

    def test_deadline_presets_accepted(self, deco, wf):
        tight = deco.schedule(wf, "tight")
        loose = deco.schedule(wf, "loose")
        assert loose.expected_cost <= tight.expected_cost + 1e-9

    def test_numeric_deadline(self, deco, wf):
        d = deco.presets(wf).medium
        plan = deco.schedule(wf, d)
        assert plan.deadline == pytest.approx(d)

    def test_invalid_deadline_rejected(self, deco, wf):
        with pytest.raises(ValidationError):
            deco.schedule(wf, -5.0)
        with pytest.raises(ValidationError):
            deco.schedule(wf, "weird")

    def test_higher_percentile_not_cheaper(self, deco, wf):
        lo = deco.schedule(wf, "medium", deadline_percentile=90.0)
        hi = deco.schedule(wf, "medium", deadline_percentile=99.9)
        assert hi.expected_cost >= lo.expected_cost - 1e-9

    def test_beats_any_feasible_uniform_config(self, deco, wf, catalog):
        plan = deco.schedule(wf, "medium")
        problem = CompiledProblem.compile(
            wf, catalog, plan.deadline, 96.0, 100, seed=1,
            runtime_model=deco.runtime_model,
        )
        backend = VectorizedBackend()
        from repro.solver.state import PlanState

        for t in range(len(catalog)):
            ev = backend.evaluate(problem, PlanState.uniform(len(wf), t))
            if ev.feasible:
                assert plan.expected_cost <= ev.cost + 1e-12

    def test_beats_autoscaling_expected_cost(self, deco, wf, catalog):
        """Deco improves (or matches) its heuristic warm start."""
        from repro.baselines.autoscaling import autoscaling_plan_calibrated

        plan = deco.schedule(wf, "medium")
        as_plan = autoscaling_plan_calibrated(
            wf, catalog, plan.deadline, 96.0, deco.runtime_model, 100, seed=1
        )
        problem = CompiledProblem.compile(
            wf, catalog, plan.deadline, 96.0, 100, seed=1,
            runtime_model=deco.runtime_model,
        )
        ev = VectorizedBackend().evaluate(problem, problem.state_from_assignment(as_plan))
        if ev.feasible:
            assert plan.expected_cost <= ev.cost + 1e-9

    def test_require_feasible_raises_on_impossible(self, catalog):
        deco = Deco(catalog, num_samples=40, max_evaluations=150, require_feasible=True)
        wf = pipeline(3, seed=0, runtime=600.0)
        with pytest.raises(InfeasibleError):
            deco.schedule(wf, 1.0)

    def test_metadata_fields(self, deco, wf):
        plan = deco.schedule(wf, "medium")
        assert plan.backend == "gpu"
        assert plan.evaluations > 0
        assert plan.solve_seconds > 0
        assert plan.overhead_ms_per_task() > 0

    def test_cpu_backend_same_result(self, catalog, wf):
        gpu = Deco(catalog, seed=1, num_samples=40, max_evaluations=200)
        cpu = Deco(catalog, seed=1, num_samples=40, max_evaluations=200, backend="cpu")
        a = gpu.schedule(wf, "medium")
        b = cpu.schedule(wf, "medium")
        assert a.expected_cost == pytest.approx(b.expected_cost)
        assert a.assignment == b.assignment


class TestDeclarativePath:
    def test_solve_program_matches_schedule(self, catalog, wf, deco):
        reg = ImportRegistry(deco.runtime_model)
        reg.register_cloud("amazonec2", catalog)
        reg.register_workflow("montage", wf)
        d = deco.presets(wf).medium
        src = scheduling_program(percentile=96, deadline_seconds=d)
        from_program = deco.solve_program(src, reg)
        direct = deco.schedule(wf, d, deadline_percentile=96.0)
        assert from_program.expected_cost == pytest.approx(direct.expected_cost)
        assert from_program.assignment == direct.assignment

    def test_unrecognized_program_raises(self, catalog, deco):
        from repro.common.errors import WLogError

        reg = ImportRegistry()
        reg.register_cloud("amazonec2", catalog)
        src = "import(amazonec2).\ngoal minimize X in other(X).\nvar configs(T,V,C) forall task(T).\nother(1)."
        with pytest.raises(WLogError):
            deco.solve_program(src, reg)

    def test_example1_source_parses(self, deco):
        from repro.wlog.program import WLogProgram

        prog = WLogProgram.from_source(deco.example1_source())
        prog.validate_for_solving()


class TestStaticAnalysisGate:
    """solve_program must reject bad programs before IR translation."""

    def _registry(self, catalog, deco, wf):
        reg = ImportRegistry(deco.runtime_model)
        reg.register_cloud("amazonec2", catalog)
        reg.register_workflow("montage", wf)
        return reg

    def test_undefined_predicate_rejected_with_diagnostics(self, catalog, deco, wf):
        from repro.common.errors import WLogAnalysisError

        reg = self._registry(catalog, deco, wf)
        src = scheduling_program().replace("price(Vid, Up)", "prce(Vid, Up)")
        with pytest.raises(WLogAnalysisError) as info:
            deco.solve_program(src, reg)
        assert any(d.check == "E201" for d in info.value.diagnostics)
        assert "prce/2" in str(info.value)

    def test_strict_rejects_warnings(self, catalog, deco, wf):
        from repro.common.errors import WLogAnalysisError

        reg = self._registry(catalog, deco, wf)
        src = scheduling_program() + "orphan(X) :- task(X).\n"
        with pytest.raises(WLogAnalysisError) as info:
            deco.solve_program(src, reg, strict=True)
        assert any(d.check == "W304" for d in info.value.diagnostics)

    def test_clean_program_still_solves(self, catalog, deco, wf):
        reg = self._registry(catalog, deco, wf)
        d = deco.presets(wf).medium
        plan = deco.solve_program(
            scheduling_program(percentile=96, deadline_seconds=d), reg, strict=True
        )
        assert plan.feasible


class TestSemanticGate:
    """solve_program's interval gate rejects doomed programs pre-translation."""

    def _registry(self, catalog, deco, wf):
        reg = ImportRegistry(deco.runtime_model)
        reg.register_cloud("amazonec2", catalog)
        reg.register_workflow("montage", wf)
        return reg

    def test_unreachable_deadline_rejected_before_solve(self, catalog, deco, wf):
        import time

        from repro.common.errors import WLogAnalysisError

        reg = self._registry(catalog, deco, wf)
        src = scheduling_program(percentile=95, deadline_seconds=60.0)
        deco.solve_program  # touch nothing; warm imports happen below
        with pytest.raises(WLogAnalysisError) as info:
            deco.solve_program(src, reg)
        assert any(d.check == "E401" for d in info.value.diagnostics)
        # Warm, the whole gate is milliseconds -- far under the solve it skips.
        t0 = time.perf_counter()
        with pytest.raises(WLogAnalysisError):
            deco.solve_program(src, reg)
        assert (time.perf_counter() - t0) < 0.5

    def test_strict_rejects_vacuous_deadline(self, catalog, deco, wf):
        from repro.common.errors import WLogAnalysisError

        reg = self._registry(catalog, deco, wf)
        src = scheduling_program(percentile=95, deadline_seconds=1e12)
        with pytest.raises(WLogAnalysisError) as info:
            deco.solve_program(src, reg, strict=True)
        assert any(d.check == "W401" for d in info.value.diagnostics)

    def test_analyze_false_skips_gate(self, catalog, deco, wf):
        reg = self._registry(catalog, deco, wf)
        src = scheduling_program(percentile=95, deadline_seconds=60.0)
        plan = deco.solve_program(src, reg, analyze=False)
        assert not plan.feasible  # reached the solver; no static rejection


class TestDominanceMask:
    def test_spec_roundtrip_includes_flag(self, catalog):
        on = Deco(catalog)
        off = Deco(catalog, dominance_mask=False)
        assert on.spec()["dominance_mask"] is True
        assert off.spec()["dominance_mask"] is False

    def test_disabled_mask_never_prunes(self, catalog):
        from repro.workflow.generators import ligo

        wf = ligo(num_tasks=60, seed=0)
        off = Deco(catalog, seed=0, num_samples=64, max_evaluations=400,
                   incremental=False, dominance_mask=False)
        off.schedule(wf, "medium", deadline_percentile=90.0)
        assert off.last_result.pruned_candidates == 0

        on = Deco(catalog, seed=0, num_samples=64, max_evaluations=400,
                  incremental=False)
        on.schedule(wf, "medium", deadline_percentile=90.0)
        assert on.last_result.pruned_candidates > 0

    def test_mask_memoized_across_deadline_sweep(self, catalog, wf):
        deco = Deco(catalog, seed=0, num_samples=64, max_evaluations=100)
        deco.schedule(wf, "tight")
        deco.schedule(wf, "loose")
        # Same compiled tensor generation -> one mask for the whole sweep.
        assert len(deco._op_masks) == 1

    def test_clear_caches_drops_masks(self, catalog, wf):
        deco = Deco(catalog, seed=0, num_samples=64, max_evaluations=100)
        deco.schedule(wf, "medium")
        assert len(deco._op_masks) == 1
        deco.clear_caches()
        assert len(deco._op_masks) == 0
