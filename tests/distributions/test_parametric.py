"""Tests for the parametric distribution families."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.distributions import (
    Deterministic,
    Empirical,
    GammaDistribution,
    NormalDistribution,
    TruncatedNormal,
    UniformDistribution,
)


class TestDeterministic:
    def test_moments(self):
        d = Deterministic(4.2)
        assert d.mean() == 4.2
        assert d.std() == 0.0
        assert d.variance() == 0.0

    def test_sampling(self, rng):
        d = Deterministic(4.2)
        assert d.sample(rng) == 4.2
        np.testing.assert_array_equal(d.sample(rng, 5), np.full(5, 4.2))

    def test_percentiles_constant(self):
        d = Deterministic(4.2)
        assert d.percentile(1) == d.percentile(99) == 4.2

    def test_percentile_range_check(self):
        with pytest.raises(ValidationError):
            Deterministic(1.0).percentile(101)


class TestNormal:
    def test_moments(self):
        d = NormalDistribution(10.0, 2.0)
        assert d.mean() == 10.0
        assert d.std() == 2.0

    def test_median_is_mu(self):
        assert NormalDistribution(10.0, 2.0).percentile(50) == pytest.approx(10.0)

    def test_sample_statistics(self, rng):
        d = NormalDistribution(10.0, 2.0)
        s = d.sample(rng, 50_000)
        assert s.mean() == pytest.approx(10.0, abs=0.05)
        assert s.std() == pytest.approx(2.0, abs=0.05)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValidationError):
            NormalDistribution(1.0, -0.1)

    def test_coefficient_of_variation(self):
        assert NormalDistribution(10.0, 2.0).coefficient_of_variation() == pytest.approx(0.2)


class TestTruncatedNormal:
    def test_samples_respect_floor(self, rng):
        d = TruncatedNormal(1.0, 5.0, lower=0.5)
        s = d.sample(rng, 10_000)
        assert np.all(s >= 0.5)

    def test_mean_above_untruncated_for_low_mu(self):
        d = TruncatedNormal(0.0, 1.0, lower=0.0)
        assert d.mean() > 0.0

    def test_degenerate_sigma(self, rng):
        d = TruncatedNormal(3.0, 0.0)
        assert d.mean() == 3.0
        assert d.sample(rng) == 3.0
        assert d.percentile(90) == 3.0

    def test_matches_normal_when_truncation_negligible(self, rng):
        trunc = TruncatedNormal(100.0, 5.0, lower=0.0)
        assert trunc.mean() == pytest.approx(100.0, rel=1e-6)
        assert trunc.std() == pytest.approx(5.0, rel=1e-4)


class TestGamma:
    def test_table2_small_parameters(self):
        # m1.small sequential I/O from the paper's Table 2.
        d = GammaDistribution(129.3, 0.79)
        assert d.mean() == pytest.approx(129.3 * 0.79)
        assert d.std() == pytest.approx(np.sqrt(129.3) * 0.79)

    def test_sample_statistics(self, rng):
        d = GammaDistribution(129.3, 0.79)
        s = d.sample(rng, 50_000)
        assert s.mean() == pytest.approx(d.mean(), rel=0.01)
        assert s.std() == pytest.approx(d.std(), rel=0.05)

    def test_samples_positive(self, rng):
        assert np.all(GammaDistribution(2.0, 1.0).sample(rng, 10_000) > 0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            GammaDistribution(0.0, 1.0)
        with pytest.raises(ValidationError):
            GammaDistribution(1.0, -1.0)

    def test_percentile_monotone(self):
        d = GammaDistribution(129.3, 0.79)
        qs = [d.percentile(q) for q in (5, 25, 50, 75, 95)]
        assert qs == sorted(qs)


class TestUniform:
    def test_moments(self):
        d = UniformDistribution(2.0, 6.0)
        assert d.mean() == 4.0
        assert d.std() == pytest.approx(4.0 / np.sqrt(12))

    def test_percentile_linear(self):
        d = UniformDistribution(0.0, 10.0)
        assert d.percentile(30) == pytest.approx(3.0)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValidationError):
            UniformDistribution(5.0, 1.0)


class TestEmpirical:
    def test_moments_match_sample(self):
        data = [1.0, 2.0, 3.0, 4.0]
        d = Empirical(data)
        assert d.mean() == pytest.approx(2.5)
        assert len(d) == 4

    def test_bootstrap_within_support(self, rng):
        d = Empirical([1.0, 2.0, 3.0])
        s = d.sample(rng, 1000)
        assert set(np.unique(s)) <= {1.0, 2.0, 3.0}

    def test_samples_are_readonly_and_sorted(self):
        d = Empirical([3.0, 1.0, 2.0])
        assert list(d.samples) == [1.0, 2.0, 3.0]
        with pytest.raises(ValueError):
            d.samples[0] = 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Empirical([])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValidationError):
            Empirical([1.0, float("nan")])

    def test_percentile(self):
        d = Empirical(list(range(101)))
        assert d.percentile(50) == pytest.approx(50.0)
