"""Property-based tests (hypothesis) for histogram invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Histogram

# Values are drawn on a coarse grid (3 decimals) so support points are
# either identical or separated by much more than the constructor's
# numerical merge tolerance -- sub-tolerance spacing is a representation
# artifact, not a distribution property.
finite_value = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False).map(
    lambda x: round(x, 3)
)
prob_weight = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False, allow_infinity=False)


@st.composite
def histograms(draw, max_bins: int = 12):
    n = draw(st.integers(min_value=1, max_value=max_bins))
    values = draw(
        st.lists(finite_value, min_size=n, max_size=n, unique=True)
    )
    probs = draw(st.lists(prob_weight, min_size=n, max_size=n))
    return Histogram(values, probs)


@given(histograms())
def test_probabilities_normalized(h):
    assert np.isclose(h.probs.sum(), 1.0)


@given(histograms())
def test_support_strictly_increasing(h):
    assert np.all(np.diff(h.values) > 0) or len(h) == 1


@given(histograms())
def test_mean_within_support(h):
    assert h.values[0] - 1e-9 <= h.mean() <= h.values[-1] + 1e-9


@given(histograms())
def test_percentiles_monotone(h):
    qs = [h.percentile(q) for q in (0, 10, 25, 50, 75, 90, 100)]
    assert qs == sorted(qs)


@given(histograms(), histograms())
def test_sum_mean_additive(a, b):
    s = a + b
    assert np.isclose(s.mean(), a.mean() + b.mean(), rtol=1e-9, atol=1e-6)


@given(histograms(), histograms())
def test_sum_variance_additive(a, b):
    s = a + b
    assert np.isclose(s.variance(), a.variance() + b.variance(), rtol=1e-6, atol=1e-3)


@given(histograms(), histograms())
def test_max_stochastically_dominates(a, b):
    """For every threshold t: P(max <= t) <= min(P(A <= t), P(B <= t))."""
    m = Histogram.maximum(a, b)
    for t in np.concatenate([a.values, b.values]):
        assert m.cdf(t) <= min(a.cdf(t), b.cdf(t)) + 1e-9


@given(histograms())
def test_max_with_self_support_unchanged(h):
    m = Histogram.maximum(h, h)
    assert m.values[0] >= h.values[0] - 1e-9
    assert m.values[-1] <= h.values[-1] + 1e-9
    assert m.mean() >= h.mean() - 1e-9


@given(histograms(max_bins=30), st.integers(min_value=1, max_value=8))
def test_rebinning_preserves_mean_and_mass(h, bins):
    coarse = h.rebinned(bins)
    assert len(coarse) <= max(bins, len(h) if len(h) <= bins else bins)
    assert np.isclose(coarse.probs.sum(), 1.0)
    assert np.isclose(coarse.mean(), h.mean(), rtol=1e-9, atol=1e-6)


@given(histograms(), st.floats(min_value=-1e3, max_value=1e3, allow_nan=False))
def test_shift_moves_mean(h, delta):
    assert np.isclose(h.shift(delta).mean(), h.mean() + delta, rtol=1e-9, atol=1e-6)


@given(histograms())
@settings(max_examples=30)
def test_sampling_stays_on_support(h):
    rng = np.random.default_rng(0)
    s = h.sample(rng, 100)
    assert np.all(np.isin(s, h.values))
