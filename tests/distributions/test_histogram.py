"""Tests for histogram discretization and arithmetic."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.distributions import GammaDistribution, Histogram, NormalDistribution


class TestConstruction:
    def test_normalizes_probabilities(self):
        h = Histogram([1.0, 2.0], [2.0, 6.0])
        np.testing.assert_allclose(h.probs, [0.25, 0.75])

    def test_sorts_support(self):
        h = Histogram([3.0, 1.0, 2.0], [1, 1, 1])
        np.testing.assert_allclose(h.values, [1.0, 2.0, 3.0])

    def test_merges_duplicate_support(self):
        h = Histogram([1.0, 1.0, 2.0], [1, 1, 2])
        assert len(h) == 2
        np.testing.assert_allclose(h.probs, [0.5, 0.5])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            Histogram([1.0], [0.5, 0.5])

    def test_rejects_negative_probability(self):
        with pytest.raises(ValidationError):
            Histogram([1.0, 2.0], [-0.5, 1.5])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            Histogram([], [])

    def test_point_mass(self):
        h = Histogram.point(7.0)
        assert h.mean() == 7.0
        assert h.std() == 0.0
        assert len(h) == 1


class TestFromSamples:
    def test_mean_preserved_approximately(self, rng):
        samples = rng.gamma(100, 1.0, size=5000)
        h = Histogram.from_samples(samples, bins=30)
        assert h.mean() == pytest.approx(samples.mean(), rel=0.02)

    def test_bin_count_bounded(self, rng):
        h = Histogram.from_samples(rng.normal(0, 1, 1000), bins=10)
        assert len(h) <= 10

    def test_requires_samples(self):
        with pytest.raises(ValidationError):
            Histogram.from_samples([])


class TestFromDistribution:
    def test_moments_close_to_source(self):
        g = GammaDistribution(129.3, 0.79)
        h = Histogram.from_distribution(g, bins=40)
        assert h.mean() == pytest.approx(g.mean(), rel=0.005)
        assert h.std() == pytest.approx(g.std(), rel=0.1)

    def test_percentiles_close(self):
        n = NormalDistribution(100.0, 10.0)
        h = Histogram.from_distribution(n, bins=40)
        for q in (10, 50, 90):
            assert h.percentile(q) == pytest.approx(n.percentile(q), rel=0.02)

    def test_histogram_passthrough(self):
        h = Histogram([1.0, 2.0], [0.5, 0.5])
        assert Histogram.from_distribution(h) is h

    def test_degenerate_distribution(self):
        from repro.distributions import Deterministic

        h = Histogram.from_distribution(Deterministic(5.0))
        assert len(h) == 1
        assert h.mean() == 5.0


class TestArithmetic:
    def test_sum_mean_is_additive(self):
        a = Histogram([1.0, 3.0], [0.5, 0.5])
        b = Histogram([10.0, 20.0], [0.25, 0.75])
        s = a + b
        assert s.mean() == pytest.approx(a.mean() + b.mean())

    def test_sum_variance_is_additive(self):
        a = Histogram([1.0, 3.0], [0.5, 0.5])
        b = Histogram([10.0, 20.0], [0.25, 0.75])
        s = a + b
        assert s.variance() == pytest.approx(a.variance() + b.variance())

    def test_scalar_shift(self):
        h = Histogram([1.0, 2.0], [0.5, 0.5]) + 10.0
        np.testing.assert_allclose(h.values, [11.0, 12.0])

    def test_scale(self):
        h = Histogram([1.0, 2.0], [0.5, 0.5]).scale(3.0)
        assert h.mean() == pytest.approx(4.5)

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            Histogram.point(1.0).scale(0.0)

    def test_max_exact_small_case(self):
        # X, Y uniform on {0, 1}: P(max = 0) = 1/4, P(max = 1) = 3/4.
        u = Histogram([0.0, 1.0], [0.5, 0.5])
        m = Histogram.maximum(u, u)
        np.testing.assert_allclose(m.values, [0.0, 1.0])
        np.testing.assert_allclose(m.probs, [0.25, 0.75])

    def test_max_dominates_inputs(self):
        a = Histogram([1.0, 5.0], [0.5, 0.5])
        b = Histogram([2.0, 3.0], [0.5, 0.5])
        m = Histogram.maximum(a, b)
        assert m.mean() >= max(a.mean(), b.mean()) - 1e-12

    def test_max_with_point_mass(self):
        a = Histogram.point(10.0)
        b = Histogram([1.0, 2.0], [0.5, 0.5])
        m = Histogram.maximum(a, b)
        assert m.mean() == pytest.approx(10.0)

    def test_cdf(self):
        h = Histogram([1.0, 2.0, 3.0], [0.2, 0.3, 0.5])
        assert h.cdf(0.5) == 0.0
        assert h.cdf(2.0) == pytest.approx(0.5)
        assert h.cdf(10.0) == pytest.approx(1.0)


class TestRebinning:
    def test_preserves_mean_exactly(self, rng):
        values = rng.uniform(0, 100, size=200)
        probs = rng.uniform(0.1, 1.0, size=200)
        h = Histogram(values, probs)
        coarse = h.rebinned(16)
        assert len(coarse) <= 16
        assert coarse.mean() == pytest.approx(h.mean(), rel=1e-9)

    def test_noop_when_already_small(self):
        h = Histogram([1.0, 2.0], [0.5, 0.5])
        assert h.rebinned(10) is h

    def test_total_mass_preserved(self, rng):
        h = Histogram(rng.uniform(0, 10, 100), rng.uniform(0, 1, 100))
        assert h.rebinned(8).probs.sum() == pytest.approx(1.0)


class TestSampling:
    def test_samples_on_support(self, rng):
        h = Histogram([1.0, 2.0, 4.0], [0.2, 0.3, 0.5])
        s = h.sample(rng, 2000)
        assert set(np.unique(s)) <= {1.0, 2.0, 4.0}

    def test_sample_frequencies(self, rng):
        h = Histogram([0.0, 1.0], [0.25, 0.75])
        s = h.sample(rng, 40_000)
        assert s.mean() == pytest.approx(0.75, abs=0.01)

    def test_equality_and_hash(self):
        a = Histogram([1.0, 2.0], [0.5, 0.5])
        b = Histogram([1.0, 2.0], [1.0, 1.0])
        assert a == b
        assert hash(a) == hash(b)
