"""Tests for distribution fitting / goodness-of-fit (the calibration math)."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.distributions import (
    GammaDistribution,
    NormalDistribution,
    best_fit,
    fit_gamma,
    fit_normal,
    goodness_of_fit,
)


class TestFitNormal:
    def test_recovers_parameters(self, rng):
        data = rng.normal(150.3, 50.0, size=8000)
        fit = fit_normal(data)
        assert fit.distribution.mu == pytest.approx(150.3, rel=0.02)
        assert fit.distribution.sigma == pytest.approx(50.0, rel=0.05)

    def test_accepts_true_family(self, rng):
        data = rng.normal(0, 1, size=5000)
        assert fit_normal(data).accepted()

    def test_rejects_wrong_family(self, rng):
        data = rng.exponential(1.0, size=5000)
        assert not fit_normal(data).accepted()

    def test_needs_enough_samples(self):
        with pytest.raises(ValidationError):
            fit_normal([1.0, 2.0])


class TestFitGamma:
    def test_recovers_table2_parameters(self, rng):
        # m1.small sequential I/O: Gamma(k=129.3, theta=0.79).
        data = rng.gamma(129.3, 0.79, size=10_000)
        fit = fit_gamma(data)
        assert fit.distribution.k == pytest.approx(129.3, rel=0.06)
        assert fit.distribution.theta == pytest.approx(0.79, rel=0.06)

    def test_rejects_nonpositive_samples(self, rng):
        with pytest.raises(ValidationError):
            fit_gamma(np.concatenate([rng.gamma(2, 1, 100), [-1.0]]))


class TestBestFit:
    def test_picks_gamma_for_gamma_data(self, rng):
        data = rng.gamma(5.0, 2.0, size=6000)
        assert best_fit(data).family == "gamma"

    def test_picks_normal_for_normal_data(self, rng):
        # High-k gamma is close to normal; use clearly normal data with
        # negatives so the gamma candidate is excluded.
        data = rng.normal(0.0, 1.0, size=6000)
        assert best_fit(data).family == "normal"

    def test_unknown_family_rejected(self, rng):
        with pytest.raises(ValidationError):
            best_fit(rng.normal(size=100), families=("weibull",))

    def test_all_failures_rejected(self, rng):
        data = np.concatenate([rng.normal(size=100), [-5.0]])
        with pytest.raises(ValidationError):
            best_fit(data, families=("gamma",))


class TestGoodnessOfFit:
    def test_high_pvalue_for_true_distribution(self, rng):
        dist = NormalDistribution(10.0, 2.0)
        data = dist.sample(rng, 3000)
        assert goodness_of_fit(data, dist) > 0.05

    def test_low_pvalue_for_wrong_distribution(self, rng):
        data = np.random.default_rng(0).normal(10.0, 2.0, size=3000)
        assert goodness_of_fit(data, GammaDistribution(1.0, 10.0)) < 0.01
