"""Tests for workflow structural analysis."""

import pytest

from repro.workflow.analysis import profile_workflow
from repro.workflow.generators import ligo, montage, pipeline


class TestProfile:
    def test_pipeline_profile(self, catalog, runtime_model):
        wf = pipeline(4, seed=0)
        p = profile_workflow(wf, catalog, runtime_model)
        assert p.num_tasks == 4
        assert p.num_levels == 4
        assert p.max_width == 1
        assert p.parallelism == pytest.approx(1.0)
        assert p.critical_path_tasks == wf.task_ids

    def test_montage_is_io_bound(self, catalog, runtime_model):
        p = profile_workflow(montage(degrees=1, seed=0), catalog, runtime_model)
        assert p.is_io_bound

    def test_ligo_is_cpu_bound(self, catalog, runtime_model):
        p = profile_workflow(ligo(60, seed=0), catalog, runtime_model)
        assert not p.is_io_bound
        assert p.io_fraction_cheapest < 0.3

    def test_parallelism_exceeds_one_for_wide_dags(self, catalog, runtime_model):
        p = profile_workflow(montage(degrees=4, seed=0), catalog, runtime_model)
        assert p.parallelism > 3.0
        assert p.max_width > 10

    def test_data_footprint(self, catalog, runtime_model):
        wf = montage(degrees=1, seed=0)
        p = profile_workflow(wf, catalog, runtime_model)
        assert p.total_input_gb == pytest.approx(sum(t.input_bytes for t in wf) / 1e9)
        assert p.total_input_gb > 0

    def test_critical_path_consistency(self, catalog, runtime_model):
        wf = montage(degrees=1, seed=0)
        p = profile_workflow(wf, catalog, runtime_model)
        assert p.critical_path_seconds <= p.serial_seconds_ref
        assert p.critical_path_tasks[0] in wf.roots()

    def test_empty_workflow(self, catalog, runtime_model):
        from repro.workflow.dag import Workflow

        p = profile_workflow(Workflow("none", []), catalog, runtime_model)
        assert p.num_tasks == 0
        assert p.parallelism == 1.0
        assert p.io_fraction_cheapest == 0.0
