"""Tests for the synthetic workflow generators."""

import pytest

from repro.common.errors import ValidationError
from repro.workflow.generators import (
    cybershake,
    epigenomics,
    ligo,
    montage,
    pipeline,
    random_dag,
)

ALL_GENERATORS = [
    lambda: montage(degrees=1, seed=1),
    lambda: ligo(60, seed=1),
    lambda: epigenomics(60, seed=1),
    lambda: cybershake(60, seed=1),
    lambda: pipeline(5, seed=1),
    lambda: random_dag(25, seed=1),
]


class TestCommonInvariants:
    @pytest.mark.parametrize("factory", ALL_GENERATORS)
    def test_acyclic_and_connected_endpoints(self, factory):
        wf = factory()  # Workflow construction itself validates acyclicity
        assert len(wf) >= 1
        assert wf.roots()
        assert wf.leaves()

    @pytest.mark.parametrize("factory", ALL_GENERATORS)
    def test_positive_runtimes(self, factory):
        wf = factory()
        assert all(t.runtime_ref > 0 for t in wf)

    @pytest.mark.parametrize("factory", ALL_GENERATORS)
    def test_deterministic_per_seed(self, factory):
        a, b = factory(), factory()
        assert list(a.task_ids) == list(b.task_ids)
        assert [t.runtime_ref for t in a] == [t.runtime_ref for t in b]

    def test_different_seeds_differ(self):
        a = montage(degrees=1, seed=1)
        b = montage(degrees=1, seed=2)
        assert [t.runtime_ref for t in a] != [t.runtime_ref for t in b]


class TestMontage:
    def test_scales_with_degrees(self):
        sizes = [len(montage(degrees=d, seed=0)) for d in (1, 4, 8)]
        assert sizes[0] < sizes[1] < sizes[2]
        assert 20 <= sizes[0] and sizes[2] <= 1000

    def test_level_structure(self):
        wf = montage(degrees=1, seed=0)
        execs = {t.executable for t in wf}
        assert {"mProjectPP", "mDiffFit", "mConcatFit", "mBgModel",
                "mBackground", "mImgtbl", "mAdd", "mShrink", "mJPEG"} <= execs

    def test_single_sink(self):
        wf = montage(degrees=1, seed=0)
        assert len(wf.leaves()) == 1
        assert wf.task(wf.leaves()[0]).executable == "mJPEG"

    def test_num_tasks_mode(self):
        wf = montage(num_tasks=100, seed=0)
        assert 60 <= len(wf) <= 140

    def test_montage8_data_volume(self):
        total_gb = sum(t.input_bytes for t in montage(degrees=8, seed=0)) / 1e9
        assert total_gb > 100  # "hundreds of GB"

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            montage(degrees=0)
        with pytest.raises(ValidationError):
            montage(num_tasks=5)


class TestLigo:
    def test_size_approximation(self):
        for target in (20, 100, 400):
            wf = ligo(num_tasks=target, seed=0)
            assert abs(len(wf) - target) <= max(12, 0.25 * target)

    def test_cpu_dominant(self, runtime_model):
        """Ligo is the paper's CPU-intensive application."""
        wf = ligo(100, seed=0)
        inspirals = [t for t in wf if t.executable == "Inspiral"]
        t = inspirals[0]
        comp = runtime_model.components(t, "m1.small")
        io_time = comp.io_bytes / 100e6
        assert comp.cpu_seconds > 3 * io_time

    def test_group_structure(self):
        wf = ligo(44, seed=0)  # exactly 2 groups of 22
        thincas = [t for t in wf if t.executable.startswith("Thinca")]
        assert len(thincas) == 4  # 2 per group

    def test_minimum_size(self):
        with pytest.raises(ValidationError):
            ligo(3)


class TestEpigenomics:
    def test_lane_fan_out(self):
        wf = epigenomics(100, seed=0)
        maps = [t for t in wf if t.executable == "map"]
        assert len(maps) >= 10

    def test_final_pileup(self):
        wf = epigenomics(60, seed=0)
        assert wf.task(wf.leaves()[0]).executable == "pileup"

    def test_large_inputs(self):
        wf = epigenomics(60, seed=0)
        total_gb = sum(t.input_bytes for t in wf) / 1e9
        assert total_gb > 10  # "dozens of GB"


class TestPipeline:
    def test_is_chain(self):
        wf = pipeline(4, seed=0)
        assert len(wf) == 4
        assert wf.num_edges() == 3
        assert len(wf.roots()) == 1 and len(wf.leaves()) == 1

    def test_fig4_names(self):
        wf = pipeline(2, seed=0)
        assert [t.executable for t in wf] == ["process1", "process2"]
        assert wf.task(wf.task_ids[0]).inputs[0].name == "f.a"


class TestRandomDag:
    def test_edge_probability_extremes(self):
        assert random_dag(10, edge_prob=0.0, seed=0).num_edges() == 0
        full = random_dag(6, edge_prob=1.0, seed=0)
        assert full.num_edges() == 15  # complete DAG on 6 nodes

    def test_invalid_probability(self):
        with pytest.raises(ValidationError):
            random_dag(5, edge_prob=1.5)
