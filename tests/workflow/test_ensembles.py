"""Tests for workflow ensembles."""

import pytest

from repro.common.errors import ValidationError
from repro.workflow.dag import Task, Workflow
from repro.workflow.ensembles import ENSEMBLE_TYPES, Ensemble, EnsembleMember, make_ensemble
from repro.workflow.generators import ligo


def tiny_wf(name):
    return Workflow(name, [Task(task_id="t0", runtime_ref=1.0)])


def make_members(n):
    return tuple(
        EnsembleMember(workflow=tiny_wf(f"w{i}"), priority=i, deadline=100.0)
        for i in range(n)
    )


class TestEnsembleMember:
    def test_score_halves_with_priority(self):
        members = make_members(3)
        assert members[0].score == 1.0
        assert members[1].score == 0.5
        assert members[2].score == 0.25

    def test_validation(self):
        with pytest.raises(ValidationError):
            EnsembleMember(workflow=tiny_wf("w"), priority=-1)
        with pytest.raises(ValidationError):
            EnsembleMember(workflow=tiny_wf("w"), priority=0, deadline=0.0)
        with pytest.raises(ValidationError):
            EnsembleMember(workflow=tiny_wf("w"), priority=0, deadline_percentile=0.0)


class TestEnsemble:
    def test_priorities_must_be_permutation(self):
        members = (
            EnsembleMember(workflow=tiny_wf("a"), priority=0),
            EnsembleMember(workflow=tiny_wf("b"), priority=2),
        )
        with pytest.raises(ValidationError):
            Ensemble("e", members)

    def test_score_eq4(self):
        e = Ensemble("e", make_members(4), budget=10.0)
        assert e.score([0, 1]) == pytest.approx(1.5)
        assert e.score([]) == 0.0
        assert e.max_score() == pytest.approx(1.875)

    def test_score_rejects_unknown_priority(self):
        e = Ensemble("e", make_members(2), budget=1.0)
        with pytest.raises(ValidationError):
            e.score([5])

    def test_by_priority_sorted(self):
        e = Ensemble("e", tuple(reversed(make_members(3))), budget=1.0)
        assert [m.priority for m in e.by_priority()] == [0, 1, 2]

    def test_needs_members(self):
        with pytest.raises(ValidationError):
            Ensemble("e", ())

    def test_with_constraints(self):
        e = Ensemble("e", make_members(2), budget=5.0)
        out = e.with_constraints(budget=7.0, deadline_for=lambda m: 50.0, deadline_percentile=90.0)
        assert out.budget == 7.0
        assert all(m.deadline == 50.0 and m.deadline_percentile == 90.0 for m in out)


class TestMakeEnsemble:
    @pytest.mark.parametrize("kind", ENSEMBLE_TYPES)
    def test_all_types_build(self, kind):
        e = make_ensemble(kind, ligo, 6, sizes=(20, 40), seed=3)
        assert len(e) == 6
        assert sorted(m.priority for m in e) == list(range(6))

    def test_constant_sizes_equal(self):
        e = make_ensemble("constant", ligo, 5, sizes=(20, 40, 80), seed=3)
        sizes = {len(m.workflow) for m in e}
        assert len(sizes) == 1

    def test_sorted_gives_priority_to_largest(self):
        e = make_ensemble("uniform_sorted", ligo, 8, sizes=(20, 100), seed=3)
        by_prio = e.by_priority()
        sizes = [len(m.workflow) for m in by_prio]
        assert sizes == sorted(sizes, reverse=True)

    def test_pareto_skews_small(self):
        e = make_ensemble("pareto_unsorted", ligo, 20, sizes=(20, 60, 120), seed=3)
        sizes = [len(m.workflow) for m in e]
        small = sum(1 for s in sizes if s < 60)
        assert small >= len(sizes) // 2

    def test_deterministic(self):
        a = make_ensemble("uniform_unsorted", ligo, 5, seed=9, sizes=(20, 40))
        b = make_ensemble("uniform_unsorted", ligo, 5, seed=9, sizes=(20, 40))
        assert [len(m.workflow) for m in a] == [len(m.workflow) for m in b]
        assert [m.priority for m in a] == [m.priority for m in b]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            make_ensemble("zipf", ligo, 5)

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValidationError):
            make_ensemble("constant", ligo, 5, sizes=())
