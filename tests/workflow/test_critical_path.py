"""Tests for critical-path and vectorized makespan computation."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.workflow.critical_path import (
    critical_path,
    makespan_samples,
    path_time,
    static_makespan,
    task_levels,
)
from repro.workflow.dag import Task, Workflow
from repro.workflow.generators import random_dag


class TestCriticalPath:
    def test_diamond(self, diamond):
        times = {"a": 1.0, "b": 5.0, "c": 2.0, "d": 1.0}
        path, length = critical_path(diamond, times)
        assert path == ("a", "b", "d")
        assert length == pytest.approx(7.0)

    def test_callable_times(self, diamond):
        path, length = critical_path(diamond, lambda tid: 1.0)
        assert length == pytest.approx(3.0)

    def test_single_task(self):
        wf = Workflow("one", [Task(task_id="x")])
        assert critical_path(wf, {"x": 4.0}) == (("x",), 4.0)

    def test_empty_workflow(self):
        wf = Workflow("none", [])
        assert critical_path(wf, {}) == ((), 0.0)

    def test_negative_time_rejected(self, diamond):
        with pytest.raises(ValidationError):
            critical_path(diamond, {"a": -1.0, "b": 1.0, "c": 1.0, "d": 1.0})

    def test_parallel_chains(self):
        tasks = [Task(task_id=t) for t in "abcd"]
        wf = Workflow("two-chains", tasks, [("a", "b"), ("c", "d")])
        path, length = critical_path(wf, {"a": 1, "b": 1, "c": 5, "d": 5})
        assert path == ("c", "d")
        assert length == 10.0


class TestMakespanSamples:
    def test_matches_static_for_constant_times(self, diamond):
        times = {"a": 1.0, "b": 5.0, "c": 2.0, "d": 1.0}
        vec = np.asarray([[times[t] for t in diamond.task_ids]])
        mk = makespan_samples(diamond, vec)
        assert mk[0] == pytest.approx(static_makespan(diamond, times))

    def test_random_dags_match_reference(self):
        rng = np.random.default_rng(5)
        for seed in range(5):
            wf = random_dag(12, edge_prob=0.3, seed=seed)
            sample = rng.uniform(1, 10, size=(3, len(wf)))
            mk = makespan_samples(wf, sample)
            for s in range(3):
                times = {tid: sample[s, wf.index_of(tid)] for tid in wf.task_ids}
                assert mk[s] == pytest.approx(static_makespan(wf, times))

    def test_one_dimensional_input(self, diamond):
        mk = makespan_samples(diamond, np.ones(len(diamond)))
        assert mk.shape == (1,)
        assert mk[0] == pytest.approx(3.0)

    def test_shape_mismatch_rejected(self, diamond):
        with pytest.raises(ValidationError):
            makespan_samples(diamond, np.ones((2, len(diamond) + 1)))

    def test_negative_times_rejected(self, diamond):
        with pytest.raises(ValidationError):
            makespan_samples(diamond, -np.ones((1, len(diamond))))

    def test_makespan_at_least_max_task(self, diamond):
        rng = np.random.default_rng(2)
        times = rng.uniform(1, 100, size=(50, len(diamond)))
        mk = makespan_samples(diamond, times)
        assert np.all(mk >= times.max(axis=1) - 1e-12)

    def test_makespan_at_most_sum(self, diamond):
        rng = np.random.default_rng(2)
        times = rng.uniform(1, 100, size=(50, len(diamond)))
        mk = makespan_samples(diamond, times)
        assert np.all(mk <= times.sum(axis=1) + 1e-12)


class TestLevels:
    def test_diamond_levels(self, diamond):
        levels = task_levels(diamond)
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_chain_levels(self, chain3):
        assert task_levels(chain3) == {"t0": 0, "t1": 1, "t2": 2}


class TestPathTime:
    def test_valid_path(self, diamond):
        times = {"a": 1.0, "b": 5.0, "c": 2.0, "d": 1.0}
        assert path_time(diamond, ("a", "b", "d"), times) == pytest.approx(7.0)

    def test_invalid_adjacency_rejected(self, diamond):
        with pytest.raises(ValidationError):
            path_time(diamond, ("a", "d"), {"a": 1.0, "d": 1.0})
