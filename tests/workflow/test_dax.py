"""Tests for DAX XML parsing/serialization."""

import pytest

from repro.common.errors import ValidationError
from repro.workflow.dax import parse_dax, parse_dax_string, to_dax_string, write_dax
from repro.workflow.generators import montage, pipeline

#: The paper's Fig. 4 pipeline DAX (slightly abbreviated).
FIG4_DAX = """<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="3.4" name="pipeline" jobCount="2" childCount="1">
  <job id="ID01" name="process1" runtime="60">
    <uses file="f.a" link="input" size="1000"/>
    <uses file="f.b1" link="output" size="2000"/>
  </job>
  <job id="ID02" name="process2" runtime="30">
    <uses file="f.b1" link="input" size="2000"/>
    <uses file="f.c" link="output" size="500"/>
  </job>
  <child ref="ID02">
    <parent ref="ID01"/>
  </child>
</adag>
"""


class TestParse:
    def test_fig4_pipeline(self):
        wf = parse_dax_string(FIG4_DAX)
        assert wf.name == "pipeline"
        assert len(wf) == 2
        assert wf.parents("ID02") == ("ID01",)
        t1 = wf.task("ID01")
        assert t1.executable == "process1"
        assert t1.runtime_ref == 60.0
        assert t1.input_bytes == 1000
        assert t1.output_bytes == 2000

    def test_shared_file_transfer(self):
        wf = parse_dax_string(FIG4_DAX)
        assert wf.transfer_bytes("ID01", "ID02") == 2000

    def test_malformed_xml_rejected(self):
        with pytest.raises(ValidationError):
            parse_dax_string("<adag><job id='x'")

    def test_wrong_root_rejected(self):
        with pytest.raises(ValidationError):
            parse_dax_string("<workflow/>")

    def test_job_without_id_rejected(self):
        with pytest.raises(ValidationError):
            parse_dax_string('<adag><job name="p"/></adag>')

    def test_child_without_ref_rejected(self):
        with pytest.raises(ValidationError):
            parse_dax_string('<adag><job id="a" name="p"/><child><parent ref="a"/></child></adag>')

    def test_name_override(self):
        wf = parse_dax_string(FIG4_DAX, name="custom")
        assert wf.name == "custom"

    def test_namespace_tolerated(self):
        text = FIG4_DAX  # carries the Pegasus namespace by default
        assert len(parse_dax_string(text)) == 2


class TestRoundTrip:
    @pytest.mark.parametrize("wf_factory", [lambda: pipeline(4, seed=3), lambda: montage(degrees=1, seed=3)])
    def test_lossless(self, wf_factory):
        wf = wf_factory()
        back = parse_dax_string(to_dax_string(wf))
        assert back.name == wf.name
        assert list(back.task_ids) == list(wf.task_ids)
        assert sorted(back.edges()) == sorted(wf.edges())
        for tid in wf.task_ids:
            a, b = wf.task(tid), back.task(tid)
            assert b.executable == a.executable
            assert b.runtime_ref == pytest.approx(a.runtime_ref)
            assert b.input_bytes == a.input_bytes
            assert b.output_bytes == a.output_bytes

    def test_file_io(self, tmp_path):
        wf = pipeline(3, seed=0)
        path = tmp_path / "wf.dax"
        write_dax(wf, path)
        assert parse_dax(path).name == wf.name
