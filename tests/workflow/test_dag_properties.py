"""Property-based tests (hypothesis) for DAG/makespan invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workflow.critical_path import (
    critical_path,
    makespan_samples,
    static_makespan,
    task_levels,
)
from repro.workflow.generators import random_dag


@st.composite
def dags(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    p = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_dag(n, edge_prob=p, seed=seed)


@given(dags())
def test_topological_order_is_consistent(wf):
    pos = {tid: i for i, tid in enumerate(wf.task_ids)}
    for parent, child in wf.edges():
        assert pos[parent] < pos[child]


@given(dags())
def test_roots_have_no_parents_leaves_no_children(wf):
    for r in wf.roots():
        assert wf.parents(r) == ()
    for l in wf.leaves():
        assert wf.children(l) == ()


@given(dags())
def test_levels_increase_along_edges(wf):
    levels = task_levels(wf)
    for parent, child in wf.edges():
        assert levels[child] > levels[parent]


@given(dags(), st.integers(min_value=0, max_value=1000))
def test_critical_path_is_valid_path(wf, seed):
    rng = np.random.default_rng(seed)
    times = {tid: float(rng.uniform(0.1, 10)) for tid in wf.task_ids}
    path, length = critical_path(wf, times)
    assert path[0] in wf.roots()
    assert path[-1] in wf.leaves()
    for a, b in zip(path, path[1:]):
        assert b in wf.children(a)
    assert np.isclose(length, sum(times[t] for t in path))


@given(dags(), st.integers(min_value=0, max_value=1000))
def test_critical_path_dominates_all_task_times(wf, seed):
    rng = np.random.default_rng(seed)
    times = {tid: float(rng.uniform(0.1, 10)) for tid in wf.task_ids}
    mk = static_makespan(wf, times)
    assert mk >= max(times.values()) - 1e-12
    assert mk <= sum(times.values()) + 1e-12


@given(dags(), st.integers(min_value=0, max_value=500))
@settings(max_examples=40)
def test_vectorized_matches_scalar_reference(wf, seed):
    rng = np.random.default_rng(seed)
    samples = rng.uniform(0.1, 10, size=(4, len(wf)))
    mk = makespan_samples(wf, samples)
    for s in range(4):
        times = {tid: samples[s, wf.index_of(tid)] for tid in wf.task_ids}
        assert np.isclose(mk[s], static_makespan(wf, times))


@given(dags(), st.integers(min_value=0, max_value=500))
@settings(max_examples=40)
def test_makespan_monotone_in_task_times(wf, seed):
    """Increasing any task's time never decreases the makespan."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.1, 10, size=(1, len(wf)))
    bumped = base.copy()
    idx = int(rng.integers(0, len(wf)))
    bumped[0, idx] += 5.0
    assert makespan_samples(wf, bumped)[0] >= makespan_samples(wf, base)[0] - 1e-12


@given(dags())
def test_scaling_runtimes_scales_total(wf):
    scaled = wf.scaled(3.0)
    assert np.isclose(scaled.total_runtime_ref(), 3.0 * wf.total_runtime_ref())
