"""Tests for the task runtime model (CPU + I/O + network)."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.workflow.dag import FileSpec, Task
from repro.workflow.generators import pipeline
from repro.workflow.runtime_model import RuntimeModel

MB = 1_000_000


@pytest.fixture()
def model(catalog):
    return RuntimeModel(catalog)


@pytest.fixture()
def data_task():
    return Task(
        task_id="t",
        runtime_ref=120.0,
        inputs=(FileSpec("in", 1000 * MB),),
        outputs=(FileSpec("out", 500 * MB),),
    )


class TestComponents:
    def test_cpu_scales_with_speed(self, model, data_task, catalog):
        small = model.components(data_task, "m1.small")
        xlarge = model.components(data_task, "m1.xlarge")
        assert small.cpu_seconds == pytest.approx(120.0)
        assert xlarge.cpu_seconds == pytest.approx(120.0 / catalog.type("m1.xlarge").cpu_speed)

    def test_bytes_are_type_independent(self, model, data_task):
        a = model.components(data_task, "m1.small")
        b = model.components(data_task, "m1.large")
        assert a.io_bytes == b.io_bytes == 1500 * MB

    def test_zero_data_task(self, model):
        t = Task(task_id="z", runtime_ref=10.0)
        comp = model.components(t, "m1.small")
        assert comp.io_bytes == 0


class TestMean:
    def test_mean_decomposition(self, model, data_task, catalog):
        itype = catalog.type("m1.small")
        expected = (
            120.0
            + 1500 * MB / itype.seq_io.mean()
            + 1500 * MB / itype.network.mean()
        )
        assert model.mean(data_task, "m1.small") == pytest.approx(expected)

    def test_faster_types_not_slower(self, model, data_task, catalog):
        means = [model.mean(data_task, n) for n in catalog.type_names]
        assert means[0] == max(means)  # m1.small is slowest

    def test_mean_cached(self, model, data_task):
        a = model.mean(data_task, "m1.small")
        b = model.mean(data_task, "m1.small")
        assert a == b


class TestSampling:
    def test_sample_mean_consistent(self, model, data_task, rng):
        samples = model.sample(data_task, "m1.small", rng, 20_000)
        assert samples.mean() == pytest.approx(model.mean(data_task, "m1.small"), rel=0.05)

    def test_samples_exceed_cpu_floor(self, model, data_task, rng):
        samples = model.sample(data_task, "m1.small", rng, 1000)
        assert np.all(samples > model.components(data_task, "m1.small").cpu_seconds)

    def test_scalar_sample(self, model, data_task, rng):
        assert isinstance(model.sample(data_task, "m1.small", rng), float)


class TestHistogram:
    def test_histogram_mean_close(self, model, data_task):
        h = model.histogram(data_task, "m1.small")
        assert h.mean() == pytest.approx(model.mean(data_task, "m1.small"), rel=0.05)

    def test_cpu_only_task_is_point(self, model):
        t = Task(task_id="c", runtime_ref=50.0)
        h = model.histogram(t, "m1.medium")
        assert len(h) == 1
        assert h.mean() == pytest.approx(25.0)

    def test_cached_histogram_shared_for_same_profile(self, model):
        a = Task(task_id="a", runtime_ref=10.0, inputs=(FileSpec("x", MB),))
        b = Task(task_id="b", runtime_ref=10.0, inputs=(FileSpec("y", MB),))
        assert model.cached_histogram(a, "m1.small") is model.cached_histogram(b, "m1.small")

    def test_percentile_ordering(self, model, data_task):
        p50 = model.percentile(data_task, "m1.small", 50)
        p95 = model.percentile(data_task, "m1.small", 95)
        assert p50 < p95


class TestTensors:
    def test_shapes(self, model, catalog):
        wf = pipeline(4, seed=0)
        tensor = model.sample_tensor(wf, 30, seed=1)
        assert tensor.shape == (len(catalog), 30, 4)
        assert model.mean_matrix(wf).shape == (len(catalog), 4)

    def test_tensor_reproducible(self, model):
        wf = pipeline(3, seed=0)
        a = model.sample_tensor(wf, 10, seed=5)
        b = model.sample_tensor(wf, 10, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_tensor_type_subset(self, model):
        wf = pipeline(3, seed=0)
        full = model.sample_tensor(wf, 10, seed=5)
        sub = model.sample_tensor(wf, 10, seed=5, type_names=("m1.small",))
        np.testing.assert_array_equal(sub[0], full[0])

    def test_tensor_positive(self, model):
        wf = pipeline(3, seed=0)
        assert np.all(model.sample_tensor(wf, 20, seed=2) > 0)

    def test_tensor_mean_tracks_model_mean(self, model):
        wf = pipeline(2, seed=0, data_mb=2000.0)
        tensor = model.sample_tensor(wf, 4000, seed=3)
        mean = model.mean_matrix(wf)
        np.testing.assert_allclose(tensor.mean(axis=1), mean, rtol=0.05)

    def test_invalid_num_samples(self, model):
        with pytest.raises(ValidationError):
            model.sample_tensor(pipeline(2, seed=0), 0)

    def test_invalid_bins(self, catalog):
        with pytest.raises(ValidationError):
            RuntimeModel(catalog, histogram_bins=0)
