"""Tests for the six transformation operations (paper Fig. 5)."""

import pytest

from repro.common.errors import ValidationError
from repro.workflow.generators import pipeline
from repro.workflow.transformations import OPERATION_NAMES, ScheduleDraft


@pytest.fixture()
def draft(diamond, catalog):
    return ScheduleDraft.initial(diamond, catalog)


class TestInitialState:
    def test_everything_on_cheapest(self, draft):
        assert set(draft.type_index.values()) == {0}

    def test_assignment_names(self, draft, catalog):
        names = draft.assignment()
        assert set(names.values()) == {catalog.type_names[0]}

    def test_six_operations_exist(self):
        assert len(OPERATION_NAMES) == 6


class TestPromoteDemote:
    def test_promote_moves_up_one(self, draft):
        assert draft.promote("a")
        assert draft.type_index["a"] == 1

    def test_promote_saturates_at_top(self, draft, catalog):
        for _ in range(len(catalog) - 1):
            assert draft.promote("a")
        assert not draft.promote("a")
        assert draft.type_index["a"] == len(catalog) - 1

    def test_demote_inverse_of_promote(self, draft):
        draft.promote("a")
        assert draft.demote("a")
        assert draft.type_index["a"] == 0

    def test_demote_saturates_at_bottom(self, draft):
        assert not draft.demote("a")

    def test_unknown_task_rejected(self, draft):
        with pytest.raises(ValidationError):
            draft.promote("zz")

    def test_fig5b_children(self, catalog):
        """Fig. 5b: the initial state's Promote children each upgrade one task."""
        wf = pipeline(2, seed=0)
        draft = ScheduleDraft.initial(wf, catalog)
        children = list(draft.children_by_promote())
        assert len(children) == 2
        for child in children:
            upgraded = [t for t, i in child.type_index.items() if i == 1]
            assert len(upgraded) == 1
        # The parent draft is untouched.
        assert set(draft.type_index.values()) == {0}


class TestMergeCoschedule:
    def test_merge_same_type_tasks(self, draft):
        assert draft.merge("b", "c")
        assert draft.group["b"] == draft.group["c"]

    def test_merge_requires_same_type(self, draft):
        draft.promote("b")
        assert not draft.merge("b", "c")

    def test_merge_rejects_reverse_precedence(self, draft):
        # d depends on b; merging (d, b) with d first would deadlock.
        assert not draft.merge("d", "b")

    def test_merge_allows_forward_precedence(self, draft):
        assert draft.merge("b", "d")

    def test_merge_self_rejected(self, draft):
        assert not draft.merge("b", "b")

    def test_merge_transitive_group(self, draft):
        draft.merge("a", "b")
        draft.merge("a", "c")
        assert draft.group["b"] == draft.group["c"]

    def test_co_schedule(self, draft):
        assert draft.co_schedule(("b", "c"))
        assert draft.groups() is not None

    def test_co_schedule_needs_two(self, draft):
        assert not draft.co_schedule(("b",))

    def test_co_schedule_requires_same_type(self, draft):
        draft.promote("c")
        assert not draft.co_schedule(("b", "c"))

    def test_groups_none_when_empty(self, draft):
        assert draft.groups() is None


class TestMoveSplit:
    def test_move_accumulates(self, draft):
        draft.move("a", 10.0)
        draft.move("a", 5.0)
        assert draft.start["a"] == 15.0

    def test_move_rejects_negative(self, draft):
        with pytest.raises(ValidationError):
            draft.move("a", -1.0)

    def test_split_records_interval(self, draft):
        draft.split("b", 100.0, 200.0)
        assert draft.splits["b"] == [(100.0, 200.0)]

    def test_split_rejects_bad_interval(self, draft):
        with pytest.raises(ValidationError):
            draft.split("b", 200.0, 100.0)


class TestCopy:
    def test_copy_is_deep_for_mutables(self, draft):
        clone = draft.copy()
        clone.promote("a")
        clone.move("b", 5.0)
        clone.merge("b", "c")
        assert draft.type_index["a"] == 0
        assert "b" not in draft.start
        assert "b" not in draft.group
