"""Tests for the six transformation operations (paper Fig. 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.instance_types import ec2_catalog
from repro.common.errors import ValidationError
from repro.workflow.generators import pipeline, random_dag
from repro.workflow.transformations import OPERATION_NAMES, ScheduleDraft


@pytest.fixture()
def draft(diamond, catalog):
    return ScheduleDraft.initial(diamond, catalog)


class TestInitialState:
    def test_everything_on_cheapest(self, draft):
        assert set(draft.type_index.values()) == {0}

    def test_assignment_names(self, draft, catalog):
        names = draft.assignment()
        assert set(names.values()) == {catalog.type_names[0]}

    def test_six_operations_exist(self):
        assert len(OPERATION_NAMES) == 6


class TestPromoteDemote:
    def test_promote_moves_up_one(self, draft):
        assert draft.promote("a")
        assert draft.type_index["a"] == 1

    def test_promote_saturates_at_top(self, draft, catalog):
        for _ in range(len(catalog) - 1):
            assert draft.promote("a")
        assert not draft.promote("a")
        assert draft.type_index["a"] == len(catalog) - 1

    def test_demote_inverse_of_promote(self, draft):
        draft.promote("a")
        assert draft.demote("a")
        assert draft.type_index["a"] == 0

    def test_demote_saturates_at_bottom(self, draft):
        assert not draft.demote("a")

    def test_unknown_task_rejected(self, draft):
        with pytest.raises(ValidationError):
            draft.promote("zz")

    def test_fig5b_children(self, catalog):
        """Fig. 5b: the initial state's Promote children each upgrade one task."""
        wf = pipeline(2, seed=0)
        draft = ScheduleDraft.initial(wf, catalog)
        children = list(draft.children_by_promote())
        assert len(children) == 2
        for child in children:
            upgraded = [t for t, i in child.type_index.items() if i == 1]
            assert len(upgraded) == 1
        # The parent draft is untouched.
        assert set(draft.type_index.values()) == {0}


class TestMergeCoschedule:
    def test_merge_same_type_tasks(self, draft):
        assert draft.merge("b", "c")
        assert draft.group["b"] == draft.group["c"]

    def test_merge_requires_same_type(self, draft):
        draft.promote("b")
        assert not draft.merge("b", "c")

    def test_merge_rejects_reverse_precedence(self, draft):
        # d depends on b; merging (d, b) with d first would deadlock.
        assert not draft.merge("d", "b")

    def test_merge_allows_forward_precedence(self, draft):
        assert draft.merge("b", "d")

    def test_merge_self_rejected(self, draft):
        assert not draft.merge("b", "b")

    def test_merge_transitive_group(self, draft):
        draft.merge("a", "b")
        draft.merge("a", "c")
        assert draft.group["b"] == draft.group["c"]

    def test_co_schedule(self, draft):
        assert draft.co_schedule(("b", "c"))
        assert draft.groups() is not None

    def test_co_schedule_needs_two(self, draft):
        assert not draft.co_schedule(("b",))

    def test_co_schedule_requires_same_type(self, draft):
        draft.promote("c")
        assert not draft.co_schedule(("b", "c"))

    def test_groups_none_when_empty(self, draft):
        assert draft.groups() is None


class TestMoveSplit:
    def test_move_accumulates(self, draft):
        draft.move("a", 10.0)
        draft.move("a", 5.0)
        assert draft.start["a"] == 15.0

    def test_move_rejects_negative(self, draft):
        with pytest.raises(ValidationError):
            draft.move("a", -1.0)

    def test_split_records_interval(self, draft):
        draft.split("b", 100.0, 200.0)
        assert draft.splits["b"] == [(100.0, 200.0)]

    def test_split_rejects_bad_interval(self, draft):
        with pytest.raises(ValidationError):
            draft.split("b", 200.0, 100.0)


class TestCopy:
    def test_copy_is_deep_for_mutables(self, draft):
        clone = draft.copy()
        clone.promote("a")
        clone.move("b", 5.0)
        clone.merge("b", "c")
        assert draft.type_index["a"] == 0
        assert "b" not in draft.start
        assert "b" not in draft.group


# Dirty-set tracking (incremental evaluation lineage) ----------------------

_CATALOG = ec2_catalog()


def _draft_diff(parent: ScheduleDraft, child: ScheduleDraft) -> set[str]:
    """Tasks whose draft entry (type/start/group/splits) actually differs."""
    return {
        tid
        for tid in child.workflow.task_ids
        if child.type_index.get(tid) != parent.type_index.get(tid)
        or child.start.get(tid) != parent.start.get(tid)
        or child.group.get(tid) != parent.group.get(tid)
        or child.splits.get(tid, []) != parent.splits.get(tid, [])
    }


def _apply_op(draft: ScheduleDraft, op: str, tasks: list[str], pick) -> set[str]:
    """Apply one drawn operation; returns the task args it was given."""
    a = tasks[pick % len(tasks)]
    b = tasks[(pick // len(tasks)) % len(tasks)]
    if op == "promote":
        draft.promote(a)
        return {a}
    if op == "demote":
        draft.demote(a)
        return {a}
    if op == "merge":
        draft.merge(a, b)
        return {a, b}
    if op == "co_schedule":
        draft.co_schedule((a, b))
        return {a, b}
    if op == "move":
        draft.move(a, float(pick % 3))  # delay 0 is a recorded no-op
        return {a}
    draft.split(a, 1.0, 2.0 + pick)
    return {a}


ops_strategy = st.lists(
    st.tuples(st.sampled_from(OPERATION_NAMES), st.integers(0, 10_000)),
    min_size=1,
    max_size=8,
)


class TestDirtySets:
    @given(op=st.sampled_from(OPERATION_NAMES), pick=st.integers(0, 10_000),
           seed=st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_single_op_dirty_is_exactly_the_diff(self, op, pick, seed):
        """One op on a fresh child: dirty == the entries it rewrote."""
        wf = random_dag(6, edge_prob=0.3, seed=seed)
        # Start mid-catalog so Demote is not always saturated.
        parent = ScheduleDraft.initial(wf, _CATALOG, type_index=1)
        child = parent.copy()
        _apply_op(child, op, list(wf.task_ids), pick)
        assert child.dirty == _draft_diff(parent, child)

    @given(ops=ops_strategy, seed=st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_sequence_dirty_is_sound_and_bounded(self, ops, seed):
        """Op sequences: dirty covers every real diff, names only touched tasks."""
        wf = random_dag(6, edge_prob=0.3, seed=seed)
        parent = ScheduleDraft.initial(wf, _CATALOG, type_index=1)
        child = parent.copy()
        touched: set[str] = set()
        for op, pick in ops:
            touched |= _apply_op(child, op, list(wf.task_ids), pick)
        # Soundness: nothing changed without being reported dirty.
        assert _draft_diff(parent, child) <= child.dirty
        # Boundedness: only tasks some op actually received.
        assert child.dirty <= touched

    def test_failed_ops_record_nothing(self, draft, catalog):
        for _ in range(len(catalog) - 1):
            draft.promote("a")
        draft.dirty.clear()
        assert not draft.promote("a")  # saturated
        assert not draft.merge("a", "a")  # degenerate
        assert not draft.co_schedule(("a",))  # too few tasks
        assert draft.dirty == set()

    def test_zero_delay_move_is_clean(self, draft):
        assert draft.move("a", 0.0)
        assert draft.dirty == set()

    def test_remerge_records_only_the_newcomer(self, draft):
        assert draft.merge("b", "c")
        assert draft.dirty == {"b", "c"}
        draft.dirty.clear()
        # 'b' and 'c' already share the group: merging again is clean,
        # extending the group dirties only the new member.
        assert draft.merge("b", "c")
        assert draft.dirty == set()
        assert draft.merge("b", "d")
        assert draft.dirty == {"d"}

    def test_copy_starts_clean(self, draft):
        draft.promote("a")
        child = draft.copy()
        assert draft.dirty == {"a"}
        assert child.dirty == set()

    def test_dirty_indices_are_sorted_dense(self, catalog):
        wf = pipeline(4, seed=0)
        draft = ScheduleDraft.initial(wf, catalog)
        ids = list(wf.task_ids)
        draft.promote(ids[2])
        draft.promote(ids[0])
        assert draft.dirty_indices() == (0, 2)
