"""Tests for the Task/Workflow DAG model."""

import pytest

from repro.common.errors import ValidationError
from repro.workflow.dag import FileSpec, Task, Workflow


def make_workflow(edges, n=4):
    tasks = [Task(task_id=f"t{i}", runtime_ref=float(i + 1)) for i in range(n)]
    return Workflow("wf", tasks, edges)


class TestFileSpec:
    def test_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            FileSpec("", 10)

    def test_rejects_negative_size(self):
        with pytest.raises(ValidationError):
            FileSpec("f", -1)


class TestTask:
    def test_byte_totals(self):
        t = Task(
            task_id="a",
            inputs=(FileSpec("i1", 10), FileSpec("i2", 20)),
            outputs=(FileSpec("o", 5),),
        )
        assert t.input_bytes == 30
        assert t.output_bytes == 5

    def test_rejects_empty_id(self):
        with pytest.raises(ValidationError):
            Task(task_id="")

    def test_rejects_negative_runtime(self):
        with pytest.raises(ValidationError):
            Task(task_id="a", runtime_ref=-1.0)


class TestWorkflowConstruction:
    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValidationError):
            Workflow("wf", [Task(task_id="a"), Task(task_id="a")])

    def test_unknown_edge_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            make_workflow([("t0", "zz")])
        with pytest.raises(ValidationError):
            make_workflow([("zz", "t0")])

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            make_workflow([("t0", "t0")])

    def test_cycle_rejected(self):
        with pytest.raises(ValidationError):
            make_workflow([("t0", "t1"), ("t1", "t2"), ("t2", "t0")])

    def test_duplicate_edges_deduped(self):
        wf = make_workflow([("t0", "t1"), ("t0", "t1")])
        assert wf.num_edges() == 1

    def test_empty_workflow_allowed(self):
        wf = Workflow("empty", [])
        assert len(wf) == 0
        assert wf.roots() == ()


class TestTopology:
    def test_topological_order_respects_edges(self, diamond):
        order = {tid: i for i, tid in enumerate(diamond.task_ids)}
        for parent, child in diamond.edges():
            assert order[parent] < order[child]

    def test_roots_and_leaves(self, diamond):
        assert diamond.roots() == ("a",)
        assert diamond.leaves() == ("d",)

    def test_parents_children(self, diamond):
        assert set(diamond.children("a")) == {"b", "c"}
        assert set(diamond.parents("d")) == {"b", "c"}
        assert diamond.parents("a") == ()

    def test_index_of_is_dense(self, diamond):
        indices = sorted(diamond.index_of(t) for t in diamond.task_ids)
        assert indices == list(range(len(diamond)))

    def test_iteration_topological(self, diamond):
        ids = [t.task_id for t in diamond]
        assert ids == list(diamond.task_ids)

    def test_unknown_task_lookup(self, diamond):
        with pytest.raises(ValidationError):
            diamond.task("nope")
        with pytest.raises(ValidationError):
            diamond.children("nope")


class TestTransferBytes:
    def test_matched_by_filename(self):
        a = Task(task_id="a", outputs=(FileSpec("x", 100), FileSpec("y", 50)))
        b = Task(task_id="b", inputs=(FileSpec("x", 100),))
        wf = Workflow("wf", [a, b], [("a", "b")])
        assert wf.transfer_bytes("a", "b") == 100

    def test_fallback_to_full_output(self):
        a = Task(task_id="a", outputs=(FileSpec("x", 100),))
        b = Task(task_id="b", inputs=(FileSpec("other", 10),))
        wf = Workflow("wf", [a, b], [("a", "b")])
        assert wf.transfer_bytes("a", "b") == 100

    def test_requires_edge(self, diamond):
        with pytest.raises(ValidationError):
            diamond.transfer_bytes("b", "c")


class TestDerivation:
    def test_scaled_multiplies_runtimes(self, diamond):
        scaled = diamond.scaled(2.0)
        for tid in diamond.task_ids:
            assert scaled.task(tid).runtime_ref == pytest.approx(
                2.0 * diamond.task(tid).runtime_ref
            )
        assert list(scaled.edges()) == list(diamond.edges())

    def test_scaled_rejects_nonpositive(self, diamond):
        with pytest.raises(ValidationError):
            diamond.scaled(0.0)

    def test_relabeled(self, diamond):
        assert diamond.relabeled("new").name == "new"

    def test_map_tasks_preserves_ids(self, diamond):
        import dataclasses

        out = diamond.map_tasks(lambda t: dataclasses.replace(t, runtime_ref=1.0))
        assert all(out.task(tid).runtime_ref == 1.0 for tid in out.task_ids)

    def test_map_tasks_rejects_id_change(self, diamond):
        import dataclasses

        with pytest.raises(ValidationError):
            diamond.map_tasks(lambda t: dataclasses.replace(t, task_id=t.task_id + "x"))

    def test_total_runtime_ref(self, diamond):
        expected = sum(t.runtime_ref for t in diamond)
        assert diamond.total_runtime_ref() == pytest.approx(expected)
