"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.instance_types import ec2_catalog
from repro.common.rng import RngService
from repro.workflow.dag import FileSpec, Task, Workflow
from repro.workflow.runtime_model import RuntimeModel

MB = 1_000_000


@pytest.fixture(scope="session")
def catalog():
    return ec2_catalog()

@pytest.fixture(scope="session")
def runtime_model(catalog):
    return RuntimeModel(catalog)


@pytest.fixture()
def rngs():
    return RngService(seed=1234)


@pytest.fixture()
def rng():
    return np.random.default_rng(99)


def build_diamond(runtime: float = 100.0, data_mb: float = 500.0) -> Workflow:
    """A 4-task diamond: a -> (b, c) -> d."""
    size = int(data_mb * MB)

    def task(tid, rt):
        return Task(
            task_id=tid,
            executable=f"exe_{tid}",
            runtime_ref=rt,
            inputs=(FileSpec(f"in_{tid}", size),),
            outputs=(FileSpec(f"out_{tid}", size),),
        )

    return Workflow(
        "diamond",
        [task("a", runtime), task("b", 2 * runtime), task("c", runtime), task("d", runtime)],
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
    )


@pytest.fixture()
def diamond() -> Workflow:
    return build_diamond()


@pytest.fixture()
def chain3() -> Workflow:
    """A 3-task chain with small data (fast in the interpreter)."""
    tasks = [
        Task(task_id=f"t{i}", executable="p", runtime_ref=60.0,
             inputs=(FileSpec(f"f{i}", 100 * MB),),
             outputs=(FileSpec(f"f{i + 1}", 100 * MB),))
        for i in range(3)
    ]
    return Workflow("chain3", tasks, [("t0", "t1"), ("t1", "t2")])
