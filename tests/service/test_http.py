"""HTTP front end: routes, status codes, structured backpressure."""

from __future__ import annotations

import pytest

from repro.service import DecoService, ServiceConfig, ServiceClient, ServiceServer

from .conftest import ENGINE, montage_payload


@pytest.fixture()
def server(tmp_path):
    config = ServiceConfig(
        journal_path=str(tmp_path / "jobs.jsonl"),
        workers=2,
        degrade_depth=4,
        reject_depth=6,
        tenant_rate=1000.0,
        tenant_burst=1000.0,
        engine=dict(ENGINE),
    )
    with ServiceServer(DecoService(config), port=0) as srv:
        srv.start()
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, timeout_s=30.0)


class TestRoutes:
    def test_submit_poll_complete(self, client):
        code, doc = client.submit(montage_payload())
        assert code == 202
        assert doc["job_id"].startswith("job-")
        status = client.wait(doc["job_id"], timeout_s=120)
        assert status["state"] == "completed"
        assert status["result"]["plan"]["feasible"] is True

    def test_health_and_readiness(self, client):
        code, doc = client._request("GET", "/healthz")
        assert code == 200 and doc["ok"] is True
        code, doc = client._request("GET", "/readyz")
        assert code == 200 and doc["ok"] is True

    def test_stats_exposes_worker_pids(self, client):
        stats = client.stats()
        assert len(stats["worker_pids"]) == 2
        assert "cache" in stats and "jobs" in stats

    def test_unknown_job_404(self, client):
        code, doc = client.status("job-doesnotexist")
        assert code == 404
        assert doc["job_id"] == "job-doesnotexist"

    def test_unknown_route_404(self, client):
        assert client._request("GET", "/v2/nope")[0] == 404
        assert client._request("POST", "/v1/other")[0] == 404

    def test_malformed_payload_400(self, client):
        code, doc = client.submit({"workflow": {}})
        assert code == 400
        assert "workflow" in doc["error"]

    def test_invalid_json_body_400(self, client, server):
        import urllib.request

        req = urllib.request.Request(
            server.url + "/v1/jobs", data=b"{not json", method="POST"
        )
        try:
            urllib.request.urlopen(req, timeout=10)
            code = 200
        except urllib.error.HTTPError as exc:
            code = exc.code
        assert code == 400


class TestBackpressure:
    def test_queue_full_returns_429_with_retry_after(self, tmp_path):
        config = ServiceConfig(
            journal_path=str(tmp_path / "bp.jsonl"),
            workers=2,
            degrade_depth=1,
            reject_depth=1,
            tenant_rate=1000.0,
            tenant_burst=1000.0,
            engine=dict(ENGINE),
        )
        # Dispatcher NOT started: submissions pile up against reject_depth.
        with ServiceServer(DecoService(config), port=0) as srv:
            srv._httpd_thread = None  # only the HTTP listener, no dispatcher
            import threading

            thread = threading.Thread(
                target=srv._httpd.serve_forever, kwargs={"poll_interval": 0.05},
                daemon=True,
            )
            thread.start()
            client = ServiceClient(srv.url, timeout_s=10.0)
            code, first = client.submit(montage_payload(seed=1))
            assert code == 202
            code, doc = client.submit(montage_payload(seed=2))
            assert code == 429
            assert doc["reason"] == "queue_full"
            assert doc["retry_after_s"] > 0

    def test_server_close_is_idempotent(self, tmp_path):
        config = ServiceConfig(
            journal_path=str(tmp_path / "cl.jsonl"),
            workers=2,
            engine=dict(ENGINE),
        )
        srv = ServiceServer(DecoService(config), port=0)
        srv.start()
        srv.close()
        srv.close()
