"""The service's content-addressed compiled-problem store (PR 10).

One workflow submitted at several deadlines compiles the same base
tensors every time; the store publishes them into a shared-memory
segment once and later jobs -- on any warm worker -- attach zero-copy
instead of recompiling.  These tests pin the publish -> hit flow, the
stats surface, the unlink-at-close lifetime, and the opt-out.
"""

from __future__ import annotations

import pytest

from repro.parallel.arena import ArenaError, arena_available, attach_segment
from repro.service import DecoService, ServiceConfig
from repro.service.cache import problem_store_key

from .conftest import ENGINE, montage_payload

needs_shm = pytest.mark.skipif(
    not arena_available(), reason="POSIX shared memory unavailable in this sandbox"
)


def make_service(tmp_path, **over) -> DecoService:
    defaults = dict(
        journal_path=str(tmp_path / "jobs.jsonl"),
        workers=2,
        tenant_rate=1000.0,
        tenant_burst=1000.0,
        backoff_base_s=0.01,
        engine=dict(ENGINE),
    )
    defaults.update(over)
    return DecoService(ServiceConfig(**defaults))


class TestProblemStoreKey:
    SPEC = {"seed": 7, "num_samples": 40}

    def test_deadline_and_percentile_do_not_change_the_key(self):
        # The store hosts the *base* compilation: jobs differing only in
        # derivation knobs must share one segment.
        a = problem_store_key(montage_payload(), engine_spec=self.SPEC)
        b = problem_store_key(
            montage_payload(deadline="tight", percentile=90.0), engine_spec=self.SPEC
        )
        assert a == b
        assert len(a) == 64

    def test_workflow_and_tensor_knobs_change_the_key(self):
        base = problem_store_key(montage_payload(), engine_spec=self.SPEC)
        assert problem_store_key(montage_payload(seed=8), engine_spec=self.SPEC) != base
        assert (
            problem_store_key(montage_payload(), engine_spec={"seed": 8, "num_samples": 40})
            != base
        )
        assert (
            problem_store_key(montage_payload(), engine_spec={"seed": 7, "num_samples": 64})
            != base
        )


@needs_shm
class TestPublishThenHit:
    def test_deadline_sweep_shares_one_segment(self, tmp_path):
        with make_service(tmp_path) as svc:
            jobs = []
            for pct in (90.0, 94.0, 98.0):
                jobs.append(svc.submit(montage_payload(percentile=pct)).job_id)
            svc.run_until_idle(timeout_s=300)
            states = [svc.job_status(j)["state"] for j in jobs]
            store = svc.stats()["problem_store"]
        assert states == ["completed"] * 3
        assert store["enabled"] is True
        assert store["keys"] == 1
        assert store["publishes"] >= 1
        assert store["hits"] >= 1
        assert store["errors"] == 0

    def test_segment_unlinked_at_close(self, tmp_path):
        svc = make_service(tmp_path)
        try:
            skey = problem_store_key(montage_payload(), engine_spec=svc._spec)
            svc.submit(montage_payload())
            svc.submit(montage_payload(percentile=94.0))
            svc.run_until_idle(timeout_s=300)
        finally:
            svc.close()
        with pytest.raises(ArenaError):
            attach_segment(skey)

    def test_wlog_jobs_bypass_the_store(self, tmp_path):
        from repro.wlog.library import scheduling_program

        program = scheduling_program(
            cloud="amazonec2",
            workflow="montage",
            percentile=95.0,
            deadline_seconds=40_000.0,
        )
        with make_service(tmp_path) as svc:
            job = svc.submit(
                {"workflow": {"app": "montage", "degrees": 1.0}, "wlog": program}
            )
            svc.run_until_idle(timeout_s=300)
            state = svc.job_status(job.job_id)["state"]
            store = svc.stats()["problem_store"]
        assert state == "completed"
        assert store["keys"] == 0


class TestOptOut:
    def test_arena_false_disables_the_store(self, tmp_path):
        with make_service(tmp_path, arena=False) as svc:
            job = svc.submit(montage_payload())
            svc.run_until_idle(timeout_s=300)
            state = svc.job_status(job.job_id)["state"]
            store = svc.stats()["problem_store"]
        assert state == "completed"
        assert store == {
            "enabled": False,
            "keys": 0,
            "hits": 0,
            "publishes": 0,
            "errors": 0,
        }
