"""Chaos harness acceptance: exactly-once terminals under injected faults.

The quick profile (worker kills + payload injections + journal
truncation replay) is the PR's acceptance gate; the latency profile
additionally widens every dispatcher race window.
"""

from __future__ import annotations

from .chaos import run_chaos


class TestChaosQuickProfile:
    def test_kills_and_injections_terminate_exactly_once(self, tmp_path):
        report = run_chaos(
            str(tmp_path), jobs=4, external_kills=2, timeout_s=300.0
        )
        assert report.violations == []
        assert report.accepted == 6  # 4 normal + exit-injector + raise-injector
        assert sum(report.terminal_counts.values()) == report.accepted
        assert report.external_kills >= 1
        assert report.worker_respawns >= report.external_kills
        assert report.terminal_counts.get("dead_lettered", 0) >= 2
        assert report.truncation_points > 0

    def test_killed_worker_recovery_is_measured(self, tmp_path):
        report = run_chaos(str(tmp_path), jobs=4, external_kills=1, timeout_s=300.0)
        assert report.violations == []
        if report.external_kills:  # a fast drain can beat the killer to it
            assert report.recovery_s is not None
            assert report.recovery_s > 0


class TestChaosWithQueueLatency:
    def test_latency_injection_does_not_break_invariants(self, tmp_path):
        report = run_chaos(
            str(tmp_path),
            jobs=3,
            external_kills=1,
            queue_latency_s=0.05,
            timeout_s=300.0,
        )
        assert report.violations == []
        assert sum(report.terminal_counts.values()) == report.accepted
