"""DecoService end to end: ladder, dispatcher, crash retry, watchdog."""

from __future__ import annotations

import pytest

from repro.common.errors import AdmissionError, ValidationError
from repro.service import DecoService, ServiceConfig

from .conftest import ENGINE, montage_payload


def make_service(tmp_path, **over) -> DecoService:
    defaults = dict(
        journal_path=str(tmp_path / "jobs.jsonl"),
        workers=2,
        tenant_rate=1000.0,
        tenant_burst=1000.0,
        backoff_base_s=0.01,
        engine=dict(ENGINE),
    )
    defaults.update(over)
    return DecoService(ServiceConfig(**defaults))


class TestHappyPath:
    def test_submit_solve_complete(self, tmp_path):
        with make_service(tmp_path) as svc:
            job = svc.submit(montage_payload())
            assert job.state == "queued"
            svc.run_until_idle(timeout_s=120)
            doc = svc.job_status(job.job_id)
        assert doc["state"] == "completed"
        assert doc["result"]["plan"]["feasible"] is True
        assert doc["result"]["plan"]["expected_cost"] > 0
        assert doc["latency_s"] > 0

    def test_wlog_program_payload(self, tmp_path):
        from repro.wlog.library import scheduling_program

        program = scheduling_program(
            cloud="amazonec2",
            workflow="montage",
            percentile=95.0,
            deadline_seconds=40_000.0,
        )
        with make_service(tmp_path) as svc:
            job = svc.submit(
                {"workflow": {"app": "montage", "degrees": 1.0}, "wlog": program}
            )
            svc.run_until_idle(timeout_s=120)
            doc = svc.job_status(job.job_id)
        assert doc["state"] == "completed"
        assert doc["result"]["plan"]["feasible"] is True

    def test_cache_hit_served_at_submit(self, tmp_path):
        with make_service(tmp_path) as svc:
            first = svc.submit(montage_payload(seed=3))
            svc.run_until_idle(timeout_s=120)
            second = svc.submit(montage_payload(seed=3))
            assert second.state == "completed"
            assert second.cache_hit is True
            assert second.result["plan"] == svc.job_status(first.job_id)["result"]["plan"]
            assert svc.cache.stats()["hits"] == 1

    def test_different_problems_do_not_share_cache(self, tmp_path):
        with make_service(tmp_path) as svc:
            svc.submit(montage_payload(seed=3))
            svc.run_until_idle(timeout_s=120)
            other = svc.submit(montage_payload(seed=4))
            assert other.state == "queued"  # miss -> real solve
            svc.run_until_idle(timeout_s=120)

    def test_closed_service_refuses_submissions(self, tmp_path):
        svc = make_service(tmp_path)
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(ValidationError, match="closed"):
            svc.submit(montage_payload())


class TestDegradationLadder:
    def test_load_shed_downgrades_to_analytic(self, tmp_path):
        with make_service(tmp_path, degrade_depth=1, reject_depth=10) as svc:
            normal = svc.submit(montage_payload(seed=1))
            shed = svc.submit(montage_payload(seed=2))
            assert normal.degraded is False
            assert shed.degraded is True
            assert shed.degrade_reason == "load_shed"
            assert shed.payload["backend"] == "analytic"
            svc.run_until_idle(timeout_s=120)
            doc = svc.job_status(shed.job_id)
        assert doc["state"] == "degraded"
        assert doc["result"]["probability_error_bound"] > 0
        assert svc.job_status(normal.job_id)["state"] == "completed"

    def test_degraded_results_never_enter_cache(self, tmp_path):
        with make_service(tmp_path, degrade_depth=0, reject_depth=10) as svc:
            shed = svc.submit(montage_payload(seed=5))
            assert shed.degraded is True
            svc.run_until_idle(timeout_s=120)
            assert svc.cache.stats()["entries"] == 0

    def test_reject_rung_after_degrade_rung(self, tmp_path):
        with make_service(tmp_path, degrade_depth=1, reject_depth=2) as svc:
            svc.submit(montage_payload(seed=1))
            degraded = svc.submit(montage_payload(seed=2))
            assert degraded.degraded is True
            with pytest.raises(AdmissionError) as exc_info:
                svc.submit(montage_payload(seed=3))
            assert exc_info.value.reason == "queue_full"
            svc.run_until_idle(timeout_s=120)

    def test_analytic_request_is_not_marked_degraded(self, tmp_path):
        with make_service(tmp_path, degrade_depth=0, reject_depth=10) as svc:
            job = svc.submit(montage_payload(backend="analytic"))
            assert job.degraded is False  # client asked for analytic
            svc.run_until_idle(timeout_s=120)
            assert svc.job_status(job.job_id)["state"] == "completed"

    def test_readiness_reports_ladder_position(self, tmp_path):
        with make_service(tmp_path, degrade_depth=1, reject_depth=2) as svc:
            assert svc.ready()["ok"] is True
            assert svc.ready()["degraded_mode"] is False
            svc.submit(montage_payload(seed=1))
            assert svc.ready()["degraded_mode"] is True
            svc.submit(montage_payload(seed=2))
            assert svc.ready()["ok"] is False
            svc.run_until_idle(timeout_s=120)
            assert svc.ready()["ok"] is True


class TestFailurePaths:
    def test_deterministic_error_dead_letters_without_retry(self, tmp_path):
        with make_service(tmp_path) as svc:
            job = svc.submit(montage_payload(inject="raise"))
            svc.run_until_idle(timeout_s=120)
            doc = svc.job_status(job.job_id)
        assert doc["state"] == "dead_lettered"
        assert doc["attempts"] == 1  # no retry for clean failures
        assert doc["error"]["type"] == "ValidationError"
        assert doc["error"]["retryable"] is False

    def test_worker_crash_retries_then_dead_letters(self, tmp_path):
        with make_service(tmp_path, max_attempts=2) as svc:
            job = svc.submit(montage_payload(inject="exit"))
            svc.run_until_idle(timeout_s=120)
            doc = svc.job_status(job.job_id)
            assert doc["state"] == "dead_lettered"
            assert doc["attempts"] == 2  # crashed, retried, crashed again
            assert doc["error"]["retryable"] is True
            assert svc.pool.respawns >= 2
            # The crashed worker's slot still serves later jobs.
            ok = svc.submit(montage_payload(seed=9))
            svc.run_until_idle(timeout_s=120)
            assert svc.job_status(ok.job_id)["state"] == "completed"

    def test_hang_watchdog_converts_stall_to_crash(self, tmp_path):
        with make_service(tmp_path, max_attempts=1, hang_after_s=0.5) as svc:
            job = svc.submit(montage_payload(inject="sleep:30"))
            svc.run_until_idle(timeout_s=120)
            doc = svc.job_status(job.job_id)
        assert doc["state"] == "dead_lettered"
        assert doc["error"]["type"] == "TimeoutError"


class TestSolveWatchdog:
    def test_undersized_budget_degrades_with_incumbent(self, tmp_path):
        with make_service(tmp_path) as svc:
            job = svc.submit(montage_payload(solve_deadline_s=1e-6))
            svc.run_until_idle(timeout_s=120)
            doc = svc.job_status(job.job_id)
        assert doc["state"] == "degraded"
        assert doc["degrade_reason"] == "solve_timeout"
        assert doc["result"]["timed_out"] is True
        # Best incumbent is still a usable plan (warm starts seed it).
        assert doc["result"]["plan"]["feasible"] is True

    def test_ample_budget_completes_normally(self, tmp_path):
        with make_service(tmp_path) as svc:
            job = svc.submit(montage_payload(solve_deadline_s=1e6))
            svc.run_until_idle(timeout_s=120)
            doc = svc.job_status(job.job_id)
        assert doc["state"] == "completed"
        assert doc["result"]["timed_out"] is False


class TestRestartRecovery:
    def test_terminal_history_survives_restart(self, tmp_path):
        with make_service(tmp_path) as svc:
            job = svc.submit(montage_payload())
            svc.run_until_idle(timeout_s=120)
            result = svc.job_status(job.job_id)["result"]
        with make_service(tmp_path) as svc2:
            doc = svc2.job_status(job.job_id)
            assert doc["state"] == "completed"
            assert doc["result"] == result
            assert svc2.queue.depth == 0

    def test_unfinished_jobs_resume_after_restart(self, tmp_path):
        svc = make_service(tmp_path)
        job = svc.submit(montage_payload(seed=11))
        svc.close()  # "crash" before any dispatch
        with make_service(tmp_path) as svc2:
            assert svc2.queue.get(job.job_id).state == "queued"
            svc2.run_until_idle(timeout_s=120)
            assert svc2.job_status(job.job_id)["state"] == "completed"

    def test_stats_and_health_shape(self, tmp_path):
        with make_service(tmp_path) as svc:
            svc.submit(montage_payload())
            svc.run_until_idle(timeout_s=120)
            stats = svc.stats()
            assert stats["jobs"] == {"completed": 1}
            assert stats["depth"] == 0
            assert len(stats["worker_pids"]) == 2
            assert svc.healthy()["ok"] is True
