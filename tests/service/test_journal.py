"""Write-ahead journal: durability, torn tails, exactly-once replay."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import JournalCorrupt, ValidationError
from repro.service import JobJournal, JobRecord, fold_events, replay_events


def _submit_event(journal: JobJournal, job_id: str, **over) -> JobRecord:
    job = JobRecord(job_id=job_id, payload={"workflow": {"app": "montage"}}, **over)
    journal.append("submitted", ts=1.0, job=job.to_dict())
    return job


class TestAppend:
    def test_append_then_replay_round_trips(self, tmp_path):
        with JobJournal(tmp_path / "j.jsonl") as journal:
            _submit_event(journal, "a")
            journal.append("started", ts=2.0, job_id="a", attempts=1)
            journal.append("completed", ts=3.0, job_id="a", result={"plan": {}})
            jobs = journal.replay()
        assert jobs["a"].state == "completed"
        assert jobs["a"].result == {"plan": {}}
        assert jobs["a"].finished_at == 3.0

    def test_unknown_event_rejected(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        with pytest.raises(ValidationError, match="unknown journal event"):
            journal.append("exploded", job_id="a")

    def test_every_append_is_on_disk_immediately(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        _submit_event(journal, "a")
        # Read through a separate handle without closing the writer: the
        # record must already be durable (fsync'd, newline-terminated).
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "submitted"
        journal.close()

    def test_close_is_idempotent(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        _submit_event(journal, "a")
        journal.close()
        journal.close()
        # Reopen-on-append after close also works.
        journal.append("started", ts=2.0, job_id="a", attempts=1)
        journal.close()


class TestTornTail:
    def test_torn_final_line_dropped_with_warning(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as journal:
            _submit_event(journal, "a")
            _submit_event(journal, "b")
        # Crash mid-append: the final record is half-written, no newline.
        with open(path, "a") as fh:
            fh.write('{"event": "completed", "job_id": "b", "re')
        with pytest.warns(RuntimeWarning, match="torn final record"):
            jobs = fold_events(replay_events(path))
        assert set(jobs) == {"a", "b"}
        assert jobs["b"].state == "queued"  # the torn terminal never happened

    def test_torn_tail_with_newline_still_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as journal:
            _submit_event(journal, "a")
        raw = path.read_bytes()
        path.write_bytes(raw + b'{"event": "started", "jo')  # torn, no newline
        with pytest.warns(RuntimeWarning):
            jobs = fold_events(replay_events(path))
        assert jobs["a"].state == "queued"

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as journal:
            _submit_event(journal, "a")
            journal.append("started", ts=2.0, job_id="a", attempts=1)
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:20]  # damage a NON-tail record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorrupt) as exc_info:
            list(replay_events(path))
        assert exc_info.value.line_number == 1
        assert exc_info.value.path == str(path)

    def test_empty_and_missing_journals_replay_clean(self, tmp_path):
        assert fold_events(replay_events(tmp_path / "missing.jsonl")) == {}
        (tmp_path / "empty.jsonl").write_text("")
        assert fold_events(replay_events(tmp_path / "empty.jsonl")) == {}


class TestFold:
    def test_running_jobs_requeued_on_replay(self, tmp_path):
        with JobJournal(tmp_path / "j.jsonl") as journal:
            _submit_event(journal, "a")
            journal.append("started", ts=2.0, job_id="a", attempts=1)
            jobs = journal.replay()
        assert jobs["a"].state == "queued"
        assert jobs["a"].attempts == 1  # the dead attempt still counts

    def test_second_terminal_event_is_structural_corruption(self, tmp_path):
        with JobJournal(tmp_path / "j.jsonl") as journal:
            _submit_event(journal, "a")
            journal.append("started", ts=2.0, job_id="a", attempts=1)
            journal.append("completed", ts=3.0, job_id="a")
            journal.append("degraded", ts=4.0, job_id="a")
            with pytest.raises(JournalCorrupt, match="exactly-once"):
                journal.replay()

    def test_event_for_unknown_job_is_corruption(self, tmp_path):
        with JobJournal(tmp_path / "j.jsonl") as journal:
            journal.append("started", ts=2.0, job_id="ghost", attempts=1)
            with pytest.raises(JournalCorrupt, match="unknown job"):
                journal.replay()

    def test_requeue_then_finish_replays_terminal(self, tmp_path):
        with JobJournal(tmp_path / "j.jsonl") as journal:
            _submit_event(journal, "a")
            journal.append("started", ts=2.0, job_id="a", attempts=1)
            journal.append("requeued", ts=3.0, job_id="a", backoff_s=0.1)
            journal.append("started", ts=4.0, job_id="a", attempts=2)
            journal.append(
                "dead_lettered", ts=5.0, job_id="a",
                error={"type": "BrokenProcessPool", "message": "x", "attempts": 2},
            )
            jobs = journal.replay()
        assert jobs["a"].state == "dead_lettered"
        assert jobs["a"].attempts == 2
        assert jobs["a"].error["type"] == "BrokenProcessPool"
