"""Shared fixtures for the service-layer tests.

Every test here runs real worker *processes* (the chaos scenarios kill
them), so the engine config is deliberately tiny: solves finish in
~0.1s, keeping the whole suite interactive.
"""

from __future__ import annotations

import warnings

import pytest

#: Small-but-real Deco engine overrides used by every service test.
ENGINE = {
    "seed": 7,
    "num_samples": 40,
    "max_evaluations": 120,
    "beam_width": 6,
    "children_per_state": 4,
    "expand_per_iter": 3,
}


def montage_payload(seed: int = 7, **extra) -> dict:
    payload = {
        "workflow": {"app": "montage", "degrees": 1.0, "seed": seed},
        "deadline": "medium",
        "percentile": 96.0,
    }
    payload.update(extra)
    return payload


@pytest.fixture(autouse=True)
def _quiet_oversubscription():
    """CI hosts often expose one usable CPU; the pool's oversubscription
    warning is expected there and irrelevant to what these tests assert."""
    with warnings.catch_warnings():
        warnings.filterwarnings(
            "ignore", message="requested .* worker", category=RuntimeWarning
        )
        yield
