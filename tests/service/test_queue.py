"""Durable queue: priorities, admission control, terminal exactly-once."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    AdmissionError,
    JobNotFound,
    ServiceError,
    ValidationError,
)
from repro.service import DurableQueue, JobJournal, TokenBucket


def _payload(seed: int = 0) -> dict:
    return {"workflow": {"app": "montage", "degrees": 1.0, "seed": seed}}


@pytest.fixture()
def queue(tmp_path):
    journal = JobJournal(tmp_path / "q.jsonl")
    q = DurableQueue(journal, reject_depth=8, tenant_rate=1000.0, tenant_burst=1000.0)
    yield q
    journal.close()


class TestTokenBucket:
    def test_burst_then_rate_limit(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, capacity=3.0, clock=lambda: now[0])
        assert [bucket.try_take() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_take()
        assert wait == pytest.approx(0.5)
        now[0] += 0.5  # refill exactly one token
        assert bucket.try_take() == 0.0

    def test_capacity_caps_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, capacity=2.0, clock=lambda: now[0])
        now[0] += 100.0
        assert bucket.try_take(2.0) == 0.0
        assert bucket.try_take(1.0) > 0.0

    def test_validates_parameters(self):
        with pytest.raises(ValidationError):
            TokenBucket(rate=0.0, capacity=1.0)


class TestSubmitAndClaim:
    def test_priority_classes_dispatch_in_rank_order(self, queue):
        batch = queue.submit(_payload(1), priority="batch")
        standard = queue.submit(_payload(2), priority="standard")
        interactive = queue.submit(_payload(3), priority="interactive")
        order = [queue.claim().job_id for _ in range(3)]
        assert order == [interactive.job_id, standard.job_id, batch.job_id]

    def test_fifo_within_priority_class(self, queue):
        first = queue.submit(_payload(1))
        second = queue.submit(_payload(2))
        assert queue.claim().job_id == first.job_id
        assert queue.claim().job_id == second.job_id

    def test_claim_marks_running_and_counts_attempt(self, queue):
        queue.submit(_payload())
        job = queue.claim()
        assert job.state == "running"
        assert job.attempts == 1
        assert queue.claim() is None

    def test_malformed_payload_rejected_before_journal(self, queue, tmp_path):
        with pytest.raises(ValidationError):
            queue.submit({"workflow": {}})
        assert queue.journal.appends == 0

    def test_unknown_priority_rejected(self, queue):
        with pytest.raises(ValidationError, match="priority"):
            queue.submit(_payload(), priority="urgent")


class TestAdmission:
    def test_queue_full_rejects_with_retry_after(self, tmp_path):
        queue = DurableQueue(
            JobJournal(tmp_path / "q.jsonl"),
            reject_depth=2, tenant_rate=1000.0, tenant_burst=1000.0,
        )
        queue.submit(_payload(1))
        queue.submit(_payload(2))
        with pytest.raises(AdmissionError) as exc_info:
            queue.submit(_payload(3))
        assert exc_info.value.reason == "queue_full"
        assert exc_info.value.retry_after_s > 0
        assert queue.rejected == 1

    def test_rejected_jobs_are_never_journaled(self, tmp_path):
        queue = DurableQueue(
            JobJournal(tmp_path / "q.jsonl"),
            reject_depth=1, tenant_rate=1000.0, tenant_burst=1000.0,
        )
        queue.submit(_payload(1))
        with pytest.raises(AdmissionError):
            queue.submit(_payload(2))
        assert queue.journal.appends == 1  # only the accepted job

    def test_per_tenant_rate_limit_isolated(self, tmp_path):
        queue = DurableQueue(
            JobJournal(tmp_path / "q.jsonl"),
            reject_depth=100, tenant_rate=0.001, tenant_burst=1.0,
        )
        queue.submit(_payload(1), tenant="alice")
        with pytest.raises(AdmissionError) as exc_info:
            queue.submit(_payload(2), tenant="alice")
        assert exc_info.value.reason == "rate_limited"
        assert exc_info.value.retry_after_s > 0
        # Bob's bucket is untouched by Alice exhausting hers.
        queue.submit(_payload(3), tenant="bob")

    def test_terminal_jobs_free_queue_depth(self, tmp_path):
        queue = DurableQueue(
            JobJournal(tmp_path / "q.jsonl"),
            reject_depth=1, tenant_rate=1000.0, tenant_burst=1000.0,
        )
        job = queue.submit(_payload(1))
        queue.claim()
        queue.finish(job.job_id, "completed", result={})
        queue.submit(_payload(2))  # depth freed: no AdmissionError


class TestTerminalExactlyOnce:
    def test_second_finish_raises(self, queue):
        job = queue.submit(_payload())
        queue.claim()
        queue.finish(job.job_id, "completed", result={})
        with pytest.raises(ServiceError, match="already terminal"):
            queue.finish(job.job_id, "degraded")

    def test_requeue_after_terminal_raises(self, queue):
        job = queue.submit(_payload())
        queue.claim()
        queue.finish(job.job_id, "dead_lettered", error={"type": "X"})
        with pytest.raises(ServiceError, match="already terminal"):
            queue.requeue(job.job_id)

    def test_unknown_job_raises_jobnotfound(self, queue):
        with pytest.raises(JobNotFound):
            queue.get("job-nope")


class TestBackoffAndRecovery:
    def test_backoff_defers_claim_without_blocking_others(self, queue):
        crashed = queue.submit(_payload(1))
        queue.claim()
        queue.requeue(crashed.job_id, backoff_s=60.0)
        other = queue.submit(_payload(2))
        # The backoff job is skipped; the fresh one dispatches.
        assert queue.claim().job_id == other.job_id
        assert queue.claim() is None  # crashed job still cooling down

    def test_restart_replays_inflight_jobs_into_queue(self, tmp_path):
        path = tmp_path / "q.jsonl"
        journal = JobJournal(path)
        queue = DurableQueue(journal, tenant_rate=1000.0, tenant_burst=1000.0)
        done = queue.submit(_payload(1))
        queue.claim()
        queue.finish(done.job_id, "completed", result={})
        inflight = queue.submit(_payload(2))
        queue.claim()  # running when the "crash" happens
        queued = queue.submit(_payload(3))
        journal.close()

        restarted = DurableQueue(JobJournal(path), tenant_rate=1000.0, tenant_burst=1000.0)
        assert restarted.get(done.job_id).state == "completed"
        assert restarted.get(inflight.job_id).state == "queued"
        assert restarted.get(queued.job_id).state == "queued"
        assert restarted.recovered_inflight == 1
        claimable = {restarted.claim().job_id, restarted.claim().job_id}
        assert claimable == {inflight.job_id, queued.job_id}
