"""Chaos harness for the Deco job service.

Drives a real service (worker processes, on-disk journal) through three
fault families while checking the service's core guarantee -- **every
accepted job reaches a terminal state exactly once**:

* **worker kills** -- SIGKILL busy workers mid-solve (on top of payload
  chaos injections: a job that always crashes its worker, a job that
  raises deterministically);
* **journal truncation** -- replay byte-level prefixes of the journal
  cut mid-record, as a crash during an append would leave it, and check
  no accepted job is lost and no terminal state is doubled;
* **queue latency** -- injected dispatch delay, which widens every
  race window the dispatcher has.

Usable two ways: pytest (``test_chaos.py``) and standalone for CI::

    PYTHONPATH=src:tests python -m service.chaos --quick
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import time
import warnings
from dataclasses import dataclass, field

from repro.service import DecoService, DurableQueue, JobJournal, ServiceConfig
from repro.service.journal import fold_events, replay_events

#: Engine small enough that a chaos run with retries stays under a minute.
CHAOS_ENGINE = {
    "seed": 7,
    "num_samples": 40,
    "max_evaluations": 120,
    "beam_width": 6,
    "children_per_state": 4,
    "expand_per_iter": 3,
}


@dataclass
class ChaosReport:
    """What a chaos run did and whether the invariants held."""

    accepted: int = 0
    terminal_counts: dict = field(default_factory=dict)
    external_kills: int = 0
    worker_respawns: int = 0
    recovery_s: float | None = None
    duration_s: float = 0.0
    truncation_points: int = 0
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "accepted": self.accepted,
            "terminal_counts": self.terminal_counts,
            "external_kills": self.external_kills,
            "worker_respawns": self.worker_respawns,
            "recovery_s": self.recovery_s,
            "duration_s": round(self.duration_s, 3),
            "truncation_points": self.truncation_points,
            "violations": self.violations,
            "ok": self.ok,
        }


def _payload(seed: int, **extra) -> dict:
    payload = {
        "workflow": {"app": "montage", "degrees": 1.0, "seed": seed},
        "deadline": "medium",
    }
    payload.update(extra)
    return payload


def _check_exactly_once(journal_path: str, accepted_ids: set, report: ChaosReport) -> None:
    """Journal-level invariants: fold succeeds, one terminal event per job."""
    try:
        events = list(replay_events(journal_path))
    except Exception as exc:  # replay itself must never fail post-run
        report.violations.append(f"journal replay failed: {exc!r}")
        return
    terminal_events: dict[str, int] = {}
    for record in events:
        if record["event"] in ("completed", "degraded", "dead_lettered"):
            job_id = record["job_id"]
            terminal_events[job_id] = terminal_events.get(job_id, 0) + 1
    for job_id in accepted_ids:
        n = terminal_events.get(job_id, 0)
        if n != 1:
            report.violations.append(
                f"job {job_id} has {n} terminal journal events (want exactly 1)"
            )
    try:
        jobs = fold_events(iter(events))
    except Exception as exc:
        report.violations.append(f"journal fold failed: {exc!r}")
        return
    if set(jobs) != accepted_ids:
        report.violations.append(
            f"replay lost/invented jobs: {sorted(set(jobs) ^ accepted_ids)}"
        )
    for job in jobs.values():
        if not job.terminal:
            report.violations.append(
                f"job {job.job_id} not terminal after run: {job.state}"
            )


def _check_truncations(journal_path: str, report: ChaosReport) -> None:
    """Replay crash-truncated prefixes: cut mid-final-record at several
    byte offsets; replay must keep every job whose 'submitted' survived
    and must never double a terminal state."""
    raw = open(journal_path, "rb").read()
    newlines = [i for i, b in enumerate(raw) if b == 0x0A]
    # Cut points: a few bytes into the record after each of the last 5
    # complete lines -- i.e. a crash partway through the next append.
    cuts = [n + 8 for n in newlines[-6:-1] if n + 8 < len(raw)]
    for cut in cuts:
        report.truncation_points += 1
        with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as fh:
            fh.write(raw[:cut])
            trunc = fh.name
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                jobs = fold_events(replay_events(trunc))
            # Every complete 'submitted' record before the cut must survive.
            expected = set()
            for line in raw[:cut].split(b"\n")[:-1]:
                if line.strip():
                    record = json.loads(line)
                    if record["event"] == "submitted":
                        expected.add(record["job"]["job_id"])
            if set(jobs) != expected:
                report.violations.append(
                    f"truncation at byte {cut}: replay has {len(jobs)} jobs, "
                    f"expected {len(expected)}"
                )
            terminal_states = ("completed", "degraded", "dead_lettered")
            for job in jobs.values():
                if job.state not in terminal_states + ("queued",):
                    report.violations.append(
                        f"truncation at byte {cut}: job {job.job_id} in "
                        f"impossible replay state {job.state!r}"
                    )
        except Exception as exc:
            report.violations.append(f"truncation at byte {cut}: replay raised {exc!r}")
        finally:
            os.unlink(trunc)


def run_chaos(
    workdir: str | None = None,
    *,
    jobs: int = 6,
    external_kills: int = 2,
    queue_latency_s: float = 0.0,
    workers: int = 2,
    max_attempts: int = 4,
    timeout_s: float = 600.0,
) -> ChaosReport:
    """One full chaos run; returns the report (``report.ok`` == no violations)."""
    workdir = workdir or tempfile.mkdtemp(prefix="deco-chaos-")
    journal_path = os.path.join(workdir, "chaos.jsonl")
    report = ChaosReport()
    config = ServiceConfig(
        journal_path=journal_path,
        workers=workers,
        max_attempts=max_attempts,
        backoff_base_s=0.02,
        degrade_depth=max(jobs, 8),
        reject_depth=2 * max(jobs, 8),
        tenant_rate=1000.0,
        tenant_burst=1000.0,
        engine=dict(CHAOS_ENGINE),
    )
    t0 = time.monotonic()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with DecoService(config) as service:
            if queue_latency_s:
                original_claim = service.queue.claim

                def laggy_claim():
                    time.sleep(queue_latency_s)
                    return original_claim()

                service.queue.claim = laggy_claim  # type: ignore[method-assign]
            submitted: dict[str, str] = {}  # job_id -> expectation
            for i in range(jobs):
                job = service.submit(_payload(seed=i))
                submitted[job.job_id] = "completed"
            crasher = service.submit(_payload(seed=100, inject="exit"))
            submitted[crasher.job_id] = "dead_lettered"
            failer = service.submit(_payload(seed=101, inject="raise"))
            submitted[failer.job_id] = "dead_lettered"
            report.accepted = len(submitted)

            kills_left = external_kills
            first_kill_at = None
            killed_job: str | None = None
            t_deadline = time.monotonic() + timeout_s
            while service.queue.depth > 0:
                if time.monotonic() > t_deadline:
                    report.violations.append(
                        f"service not idle after {timeout_s:g}s "
                        f"({service.queue.depth} jobs stuck)"
                    )
                    break
                service.step()
                if kills_left > 0:
                    # Kill the worker under a *normal* running job (payload
                    # injections already cover self-crashing jobs).
                    for active in service.pool.active():
                        target = service.queue.get(active.job_id)
                        if target.payload.get("inject"):
                            continue
                        pid = service.pool.worker_pids()[active.slot]
                        if pid is None:
                            continue
                        try:
                            os.kill(pid, signal.SIGKILL)
                        except OSError:
                            continue
                        kills_left -= 1
                        report.external_kills += 1
                        if first_kill_at is None:
                            first_kill_at = time.monotonic()
                            killed_job = active.job_id
                        break
                time.sleep(0.005)
            # Externally-killed jobs have retry budget left: they complete.
            report.worker_respawns = service.pool.respawns
            for job_id, want in submitted.items():
                record = service.queue.get(job_id)
                if not record.terminal:
                    report.violations.append(
                        f"job {job_id} never reached a terminal state ({record.state})"
                    )
                    continue
                state = record.state
                report.terminal_counts[state] = report.terminal_counts.get(state, 0) + 1
                if want == "completed" and state == "dead_lettered":
                    # An externally killed job may legitimately dead-letter
                    # only if chaos burned its whole attempt budget.
                    if record.attempts < max_attempts:
                        report.violations.append(
                            f"job {job_id} dead-lettered with budget left "
                            f"({record.attempts}/{max_attempts} attempts)"
                        )
                elif want == "dead_lettered" and state != "dead_lettered":
                    report.violations.append(
                        f"chaos-inject job {job_id} ended {state}, want dead_lettered"
                    )
            if first_kill_at is not None and killed_job is not None:
                record = service.queue.get(killed_job)
                if record.terminal:
                    # Kill-to-terminal wall clock: the drain loop exits as
                    # soon as everything is terminal, so "now" is a tight
                    # upper bound on the killed job's recovery.
                    report.recovery_s = round(time.monotonic() - first_kill_at, 3)
    _check_exactly_once(journal_path, set(submitted), report)
    _check_truncations(journal_path, report)
    report.duration_s = time.monotonic() - t0
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Deco service chaos harness")
    parser.add_argument("--quick", action="store_true",
                        help="small profile (6 jobs, 2 kills) for CI")
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--kills", type=int, default=None)
    parser.add_argument("--latency", type=float, default=0.0,
                        help="injected queue-claim latency in seconds")
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else (6 if args.quick else 12)
    kills = args.kills if args.kills is not None else (2 if args.quick else 4)
    report = run_chaos(jobs=jobs, external_kills=kills, queue_latency_s=args.latency)
    print(json.dumps(report.to_dict(), indent=2))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
