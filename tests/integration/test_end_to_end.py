"""Integration tests: the full declarative pipeline of the paper's Fig. 3.

DAX file -> mapper -> Deco (WLog program -> probabilistic IR -> compiled
problem -> transformation search) -> provisioning plan -> simulated
execution -> Condor event log, with the measured behaviour validated
against the plan's promises.
"""

import numpy as np
import pytest

from repro.cloud.simulator import CloudSimulator
from repro.common.rng import RngService
from repro.engine.deco import Deco
from repro.wlog.imports import ImportRegistry
from repro.wlog.library import scheduling_program
from repro.wms.pegasus import PegasusLite
from repro.wms.scheduler import DecoScheduler
from repro.workflow.dax import parse_dax_string, to_dax_string
from repro.workflow.generators import montage


@pytest.fixture(scope="module")
def deco(catalog):
    return Deco(catalog, seed=9, num_samples=120, max_evaluations=900)


class TestFullPipeline:
    def test_dax_to_execution(self, catalog, deco, tmp_path_factory):
        # 1. A user writes a DAX file.
        wf = montage(degrees=1, seed=8)
        dax_path = tmp_path_factory.mktemp("dax") / "montage.dax"
        dax_path.write_text(to_dax_string(wf))

        # 2. The WMS plans, Deco schedules, the cloud executes.
        wms = PegasusLite(catalog, DecoScheduler(deco, deadline="medium"))
        result = wms.submit(dax_path)

        # 3. The plan's probabilistic promise holds on repeated runs.
        plan = wms.scheduler.last_plan
        assert plan.feasible
        sim = CloudSimulator(catalog, RngService(77), deco.runtime_model)
        makespans = np.asarray(
            [r.makespan for r in sim.run_many(parse_dax_string(dax_path.read_text()),
                                              dict(plan.assignment), 30)]
        )
        hit_rate = float(np.mean(makespans <= plan.deadline))
        # 96% promised; allow Monte Carlo slack on 30 runs.
        assert hit_rate >= 0.8

        # 4. Execution produced a complete, dependency-clean event log.
        assert result.execution.makespan > 0
        assert len(result.events) >= 3 * len(wf)

    def test_declarative_program_equals_programmatic_api(self, catalog, deco):
        wf = montage(degrees=1, seed=8)
        reg = ImportRegistry(deco.runtime_model)
        reg.register_cloud("amazonec2", catalog)
        reg.register_workflow("montage", wf)
        d = deco.presets(wf).medium
        declarative = deco.solve_program(
            scheduling_program(percentile=96, deadline_seconds=d), reg
        )
        programmatic = deco.schedule(wf, d, deadline_percentile=96.0)
        assert declarative.assignment == programmatic.assignment

    def test_measured_cost_tracks_expected_ordering(self, catalog, deco):
        """A plan that is more expensive in Eq. 1 on a clearly pricier
        uniform configuration must also measure as more expensive."""
        wf = montage(degrees=1, seed=8)
        sim = CloudSimulator(catalog, RngService(5), deco.runtime_model)
        cheap = {t: "m1.small" for t in wf.task_ids}
        pricey = {t: "m1.xlarge" for t in wf.task_ids}
        cheap_cost = np.mean([r.cost for r in sim.run_many(wf, cheap, 5)])
        pricey_cost = np.mean([r.cost for r in sim.run_many(wf, pricey, 5)])
        assert cheap_cost < pricey_cost
