"""Tests for the SPSS ensemble baseline."""

import pytest

from repro.baselines.spss import spss_decide, spss_member_plan
from repro.common.errors import ValidationError
from repro.workflow.ensembles import Ensemble, make_ensemble
from repro.workflow.generators import montage


@pytest.fixture(scope="module")
def ensemble(catalog, runtime_model):
    base = make_ensemble("uniform_unsorted", montage, 5, sizes=(20, 40), seed=7)
    from repro.engine.plan import deadline_presets

    return base.with_constraints(
        budget=1e18,
        deadline_for=lambda m: deadline_presets(m.workflow, catalog, runtime_model).medium,
    )


class TestMemberPlan:
    def test_uniform_type_plan(self, catalog, runtime_model):
        wf = montage(degrees=1, seed=0)
        planned = spss_member_plan(wf, catalog, deadline=1e9, model=runtime_model)
        assert planned is not None
        plan, cost = planned
        assert set(plan.values()) == {"m1.small"}  # loosest deadline -> cheapest
        assert cost > 0

    def test_infeasible_returns_none(self, catalog, runtime_model):
        wf = montage(degrees=1, seed=0)
        assert spss_member_plan(wf, catalog, deadline=1.0, model=runtime_model) is None

    def test_tighter_deadline_pricier_type(self, catalog, runtime_model):
        wf = montage(degrees=1, seed=0)
        from repro.engine.plan import deadline_presets

        presets = deadline_presets(wf, catalog, runtime_model)
        _, loose_cost = spss_member_plan(wf, catalog, presets.loose, runtime_model)
        _, tight_cost = spss_member_plan(wf, catalog, presets.tight, runtime_model)
        assert tight_cost >= loose_cost


class TestDecide:
    def test_admits_in_priority_order(self, ensemble, catalog, runtime_model):
        decision = spss_decide(ensemble, catalog, runtime_model)
        assert list(decision.admitted_priorities) == sorted(decision.admitted_priorities)

    def test_budget_respected(self, ensemble, catalog, runtime_model):
        full = spss_decide(ensemble, catalog, runtime_model)
        half = Ensemble(ensemble.name, ensemble.members, budget=full.total_cost / 2)
        decision = spss_decide(half, catalog, runtime_model)
        assert decision.total_cost <= half.budget + 1e-9
        assert decision.num_admitted < full.num_admitted

    def test_infinite_budget_rejected(self, ensemble, catalog, runtime_model):
        unbounded = Ensemble(ensemble.name, ensemble.members, budget=float("inf"))
        with pytest.raises(ValidationError):
            spss_decide(unbounded, catalog, runtime_model)

    def test_planned_score(self, ensemble, catalog, runtime_model):
        decision = spss_decide(ensemble, catalog, runtime_model)
        assert decision.planned_score() == pytest.approx(
            sum(2.0 ** (-p) for p in decision.admitted_priorities)
        )

    def test_plans_and_costs_cover_admitted(self, ensemble, catalog, runtime_model):
        decision = spss_decide(ensemble, catalog, runtime_model)
        assert set(decision.plans) == set(decision.admitted_priorities)
        assert set(decision.costs) == set(decision.admitted_priorities)
