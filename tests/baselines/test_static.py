"""Tests for the single-type and Random schedulers."""

import pytest

from repro.baselines.static import random_plan, single_type_plan
from repro.common.errors import ValidationError
from repro.workflow.generators import montage


class TestSingleType:
    def test_uniform(self, catalog):
        wf = montage(degrees=1, seed=0)
        plan = single_type_plan(wf, "m1.large", catalog)
        assert set(plan.values()) == {"m1.large"}
        assert set(plan) == set(wf.task_ids)

    def test_unknown_type_rejected(self, catalog):
        with pytest.raises(ValidationError):
            single_type_plan(montage(degrees=1, seed=0), "z9.nano", catalog)


class TestRandom:
    def test_covers_all_tasks(self, catalog):
        wf = montage(degrees=1, seed=0)
        plan = random_plan(wf, catalog, seed=1)
        assert set(plan) == set(wf.task_ids)
        assert set(plan.values()) <= set(catalog.type_names)

    def test_uses_multiple_types(self, catalog):
        wf = montage(degrees=4, seed=0)
        plan = random_plan(wf, catalog, seed=1)
        assert len(set(plan.values())) > 1

    def test_deterministic_per_seed(self, catalog):
        wf = montage(degrees=1, seed=0)
        assert random_plan(wf, catalog, seed=5) == random_plan(wf, catalog, seed=5)
        assert random_plan(wf, catalog, seed=5) != random_plan(wf, catalog, seed=6)

    def test_roughly_uniform(self, catalog):
        wf = montage(degrees=8, seed=0)
        plan = random_plan(wf, catalog, seed=2)
        counts = {}
        for t in plan.values():
            counts[t] = counts.get(t, 0) + 1
        expected = len(wf) / len(catalog)
        for name in catalog.type_names:
            assert counts.get(name, 0) == pytest.approx(expected, rel=0.4)
