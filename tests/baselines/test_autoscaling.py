"""Tests for the Auto-scaling baseline."""

import pytest

from repro.baselines.autoscaling import autoscaling_plan, autoscaling_plan_calibrated
from repro.common.errors import ValidationError
from repro.solver.backends import CompiledProblem, VectorizedBackend
from repro.workflow.critical_path import static_makespan
from repro.workflow.generators import montage, pipeline


class TestAutoscalingPlan:
    def test_full_assignment(self, catalog, runtime_model):
        wf = montage(degrees=1, seed=0)
        plan = autoscaling_plan(wf, catalog, 3600.0, runtime_model)
        assert set(plan) == set(wf.task_ids)
        assert set(plan.values()) <= set(catalog.type_names)

    def test_loose_deadline_uses_cheap_types(self, catalog, runtime_model):
        wf = montage(degrees=1, seed=0)
        plan = autoscaling_plan(wf, catalog, 1e9, runtime_model)
        assert set(plan.values()) == {"m1.small"}

    def test_impossible_deadline_uses_fastest(self, catalog, runtime_model):
        wf = montage(degrees=1, seed=0)
        plan = autoscaling_plan(wf, catalog, 1e-3, runtime_model)
        assert set(plan.values()) == {catalog.fastest().name}

    def test_mean_makespan_tracks_deadline(self, catalog, runtime_model):
        """The plan's mean critical path should come in under the deadline
        for a chain (each task within its level sub-deadline)."""
        wf = pipeline(4, seed=0, runtime=600.0, data_mb=1000.0)
        serial_fastest = sum(
            runtime_model.mean(wf.task(t), catalog.fastest().name) for t in wf.task_ids
        )
        deadline = serial_fastest * 2.0
        plan = autoscaling_plan(wf, catalog, deadline, runtime_model)
        mk = static_makespan(
            wf, {t: runtime_model.mean(wf.task(t), plan[t]) for t in wf.task_ids}
        )
        assert mk <= deadline * 1.05

    def test_tighter_deadline_never_cheaper(self, catalog, runtime_model):
        wf = montage(degrees=1, seed=0)
        presets_loose = autoscaling_plan(wf, catalog, 5000.0, runtime_model)
        presets_tight = autoscaling_plan(wf, catalog, 1000.0, runtime_model)
        price = {n: catalog.price(n) for n in catalog.type_names}
        loose_cost = sum(price[t] for t in presets_loose.values())
        tight_cost = sum(price[t] for t in presets_tight.values())
        assert tight_cost >= loose_cost

    def test_invalid_deadline_rejected(self, catalog, runtime_model):
        with pytest.raises(ValidationError):
            autoscaling_plan(montage(degrees=1, seed=0), catalog, 0.0, runtime_model)

    def test_empty_workflow(self, catalog, runtime_model):
        from repro.workflow.dag import Workflow

        assert autoscaling_plan(Workflow("e", []), catalog, 10.0, runtime_model) == {}


class TestCalibrated:
    def test_meets_probabilistic_requirement(self, catalog, runtime_model):
        wf = montage(degrees=1, seed=0)
        from repro.engine.plan import deadline_presets

        d = deadline_presets(wf, catalog, runtime_model).medium
        plan = autoscaling_plan_calibrated(
            wf, catalog, d, 96.0, runtime_model, num_samples=100, seed=3
        )
        problem = CompiledProblem.compile(
            wf, catalog, d, 96.0, 100, seed=3, runtime_model=runtime_model
        )
        ev = VectorizedBackend().evaluate(problem, problem.state_from_assignment(plan))
        assert ev.feasible

    def test_saturates_on_impossible_deadline(self, catalog, runtime_model):
        wf = pipeline(3, seed=0, runtime=600.0)
        plan = autoscaling_plan_calibrated(
            wf, catalog, 1.0, 99.0, runtime_model, num_samples=30, seed=3
        )
        assert set(plan.values()) == {catalog.fastest().name}
