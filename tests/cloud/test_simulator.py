"""Tests for the discrete-event cloud simulator."""

import numpy as np
import pytest

from repro.cloud.simulator import CloudSimulator
from repro.common.errors import ValidationError
from repro.common.rng import RngService
from repro.common.units import billed_hours
from repro.workflow.generators import montage


@pytest.fixture()
def sim(catalog, runtime_model):
    return CloudSimulator(catalog, RngService(11), runtime_model)


def uniform_plan(wf, type_name):
    return {tid: type_name for tid in wf.task_ids}


class TestExecute:
    def test_all_tasks_complete(self, sim, diamond):
        result = sim.execute(diamond, uniform_plan(diamond, "m1.small"))
        assert len(result.task_records) == len(diamond)
        assert result.makespan > 0

    def test_dependencies_respected(self, sim, diamond):
        result = sim.execute(diamond, uniform_plan(diamond, "m1.small"))
        recs = {r.task_id: r for r in result.task_records}
        for parent, child in diamond.edges():
            assert recs[child].start >= recs[parent].finish - 1e-9

    def test_parallel_tasks_overlap(self, sim, diamond):
        result = sim.execute(diamond, uniform_plan(diamond, "m1.small"))
        recs = {r.task_id: r for r in result.task_records}
        # b and c are independent; with an elastic pool they overlap.
        assert recs["b"].start == pytest.approx(recs["c"].start)

    def test_assignments_honored(self, sim, diamond):
        plan = {"a": "m1.small", "b": "m1.xlarge", "c": "m1.small", "d": "m1.medium"}
        result = sim.execute(diamond, plan)
        for rec in result.task_records:
            assert rec.instance_type == plan[rec.task_id]

    def test_cost_is_billed_hours(self, sim, diamond, catalog):
        result = sim.execute(diamond, uniform_plan(diamond, "m1.small"))
        expected = sum(
            billed_hours(r.released - r.acquired) * catalog.price("m1.small")
            for r in result.instance_records
        )
        assert result.cost == pytest.approx(expected)

    def test_chain_reuses_one_instance(self, sim, chain3):
        result = sim.execute(chain3, uniform_plan(chain3, "m1.medium"))
        assert result.num_instances == 1

    def test_regional_prices(self, sim, chain3):
        us = sim.execute(chain3, uniform_plan(chain3, "m1.small"), region="us-east-1")
        sg = sim.execute(chain3, uniform_plan(chain3, "m1.small"), region="ap-southeast-1")
        assert sg.cost > us.cost

    def test_missing_assignment_rejected(self, sim, diamond):
        with pytest.raises(ValidationError):
            sim.execute(diamond, {"a": "m1.small"})

    def test_unknown_type_rejected(self, sim, diamond):
        with pytest.raises(ValidationError):
            sim.execute(diamond, uniform_plan(diamond, "m9.mega"))

    def test_empty_workflow(self, sim):
        from repro.workflow.dag import Workflow

        result = sim.execute(Workflow("empty", []), {})
        assert result.makespan == 0.0
        assert result.cost == 0.0


class TestGroups:
    def test_grouped_tasks_share_instance(self, sim, diamond):
        groups = {"b": "g1", "c": "g1"}
        result = sim.execute(diamond, uniform_plan(diamond, "m1.small"), groups=groups)
        recs = {r.task_id: r for r in result.task_records}
        assert recs["b"].instance_id == recs["c"].instance_id

    def test_grouped_tasks_serialize(self, sim, diamond):
        groups = {"b": "g1", "c": "g1"}
        result = sim.execute(diamond, uniform_plan(diamond, "m1.small"), groups=groups)
        recs = {r.task_id: r for r in result.task_records}
        first, second = sorted([recs["b"], recs["c"]], key=lambda r: r.start)
        assert second.start >= first.finish - 1e-9


class TestDynamics:
    def test_run_ids_give_different_realizations(self, sim, diamond):
        plan = uniform_plan(diamond, "m1.small")
        a = sim.execute(diamond, plan, run_id=0)
        b = sim.execute(diamond, plan, run_id=1)
        assert a.makespan != b.makespan

    def test_same_run_id_reproducible(self, catalog, runtime_model, diamond):
        plan = uniform_plan(diamond, "m1.small")
        a = CloudSimulator(catalog, RngService(7), runtime_model).execute(diamond, plan)
        b = CloudSimulator(catalog, RngService(7), runtime_model).execute(diamond, plan)
        assert a.makespan == b.makespan
        assert a.cost == b.cost

    def test_run_many_variance(self, sim):
        wf = montage(degrees=1, seed=0)
        results = sim.run_many(wf, uniform_plan(wf, "m1.small"), 10)
        makespans = [r.makespan for r in results]
        assert np.std(makespans) > 0

    def test_makespan_tracks_model_mean(self, sim, runtime_model, chain3):
        results = sim.run_many(chain3, uniform_plan(chain3, "m1.small"), 30)
        mean_mk = np.mean([r.makespan for r in results])
        expected = sum(runtime_model.mean(chain3.task(t), "m1.small") for t in chain3.task_ids)
        assert mean_mk == pytest.approx(expected, rel=0.1)


class TestSummarize:
    def test_summary_fields(self, sim, chain3):
        results = sim.run_many(chain3, uniform_plan(chain3, "m1.small"), 5)
        summary = sim.summarize(results)
        assert summary["p5_makespan"] <= summary["p50_makespan"] <= summary["p95_makespan"]
        assert summary["mean_cost"] > 0

    def test_summarize_empty_rejected(self, sim):
        with pytest.raises(ValidationError):
            sim.summarize([])

    def test_run_many_zero_rejected(self, sim, chain3):
        with pytest.raises(ValidationError):
            sim.run_many(chain3, uniform_plan(chain3, "m1.small"), 0)


class TestFailureInjection:
    def test_failures_lengthen_makespan(self, sim, diamond):
        plan = uniform_plan(diamond, "m1.small")
        clean = sim.execute(diamond, plan, run_id=3)
        faulty = sim.execute(diamond, plan, run_id=3, failure_rate=0.4, max_retries=20)
        assert faulty.makespan > clean.makespan

    def test_zero_rate_identical_to_default(self, sim, diamond):
        plan = uniform_plan(diamond, "m1.small")
        a = sim.execute(diamond, plan, run_id=4)
        b = sim.execute(diamond, plan, run_id=4, failure_rate=0.0)
        assert a.makespan == b.makespan

    def test_retry_exhaustion_raises(self, catalog, runtime_model, diamond):
        from repro.common.errors import CloudError
        from repro.common.rng import RngService

        sim = CloudSimulator(catalog, RngService(5), runtime_model)
        plan = uniform_plan(diamond, "m1.small")
        with pytest.raises(CloudError):
            # With a 90% failure rate and no retries allowed, some task
            # fails almost surely.
            sim.execute(diamond, plan, failure_rate=0.9, max_retries=0)

    def test_dependencies_hold_under_failures(self, sim, diamond):
        plan = uniform_plan(diamond, "m1.small")
        result = sim.execute(diamond, plan, run_id=5, failure_rate=0.3, max_retries=50)
        recs = {r.task_id: r for r in result.task_records}
        for parent, child in diamond.edges():
            assert recs[child].start >= recs[parent].finish - 1e-9

    def test_invalid_rate_rejected(self, sim, diamond):
        plan = uniform_plan(diamond, "m1.small")
        with pytest.raises(ValidationError):
            sim.execute(diamond, plan, failure_rate=1.0)
        with pytest.raises(ValidationError):
            sim.execute(diamond, plan, failure_rate=0.1, max_retries=-1)
