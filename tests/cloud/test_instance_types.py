"""Tests for the instance catalog and regions."""

import pytest

from repro.common.errors import ValidationError
from repro.cloud.instance_types import EC2_REGIONS, Catalog, InstanceType, Region, ec2_catalog
from repro.distributions import NormalDistribution


class TestEc2Catalog:
    def test_four_paper_types(self, catalog):
        assert catalog.type_names == ("m1.small", "m1.medium", "m1.large", "m1.xlarge")

    def test_sorted_by_price(self, catalog):
        prices = [catalog.price(n) for n in catalog.type_names]
        assert prices == sorted(prices)

    def test_paper_prices(self, catalog):
        assert catalog.price("m1.small") == 0.044
        assert catalog.price("m1.xlarge") == 0.350

    def test_singapore_premium(self, catalog):
        """Section 3.3: ~33% price difference on m1.small."""
        ratio = catalog.price("m1.small", "ap-southeast-1") / catalog.price("m1.small")
        assert ratio == pytest.approx(1.33, abs=0.03)

    def test_table2_distributions(self, catalog):
        small = catalog.type("m1.small")
        assert small.seq_io.mean() / 1e6 == pytest.approx(129.3 * 0.79, rel=1e-6)
        assert small.rand_io.mean() == pytest.approx(150.3)
        xlarge = catalog.type("m1.xlarge")
        assert xlarge.rand_io.std() == pytest.approx(146.4)

    def test_network_variance_shrinks_with_size(self, catalog):
        cvs = [catalog.type(n).network.coefficient_of_variation() for n in catalog.type_names]
        assert cvs[0] > cvs[-1]

    def test_cheapest_fastest(self, catalog):
        assert catalog.cheapest().name == "m1.small"
        assert catalog.fastest().name == "m1.xlarge"

    def test_index_roundtrip(self, catalog):
        for i, name in enumerate(catalog.type_names):
            assert catalog.index_of(name) == i
            assert catalog[i].name == name

    def test_unknown_lookups(self, catalog):
        with pytest.raises(ValidationError):
            catalog.type("t2.micro")
        with pytest.raises(ValidationError):
            catalog.index_of("t2.micro")
        with pytest.raises(ValidationError):
            catalog.region("eu-west-1")

    def test_default_region_selection(self):
        cat = ec2_catalog(default_region="ap-southeast-1")
        assert cat.price("m1.small") == EC2_REGIONS["ap-southeast-1"]["m1.small"]


class TestValidation:
    def _itype(self, name="x", speed=1.0):
        dist = NormalDistribution(100.0, 1.0)
        return InstanceType(
            name=name, cpu_speed=speed, vcpus=1, mem_gb=1.0,
            seq_io=dist, rand_io=dist, network=dist,
        )

    def test_duplicate_type_rejected(self):
        with pytest.raises(ValidationError):
            Catalog(
                [self._itype("a"), self._itype("a")],
                [Region("r", {"a": 1.0})],
                default_region="r",
            )

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValidationError):
            Catalog([], [Region("r", {})], default_region="r")

    def test_region_missing_price_rejected(self):
        with pytest.raises(ValidationError):
            Catalog([self._itype("a")], [Region("r", {})], default_region="r")

    def test_unknown_default_region_rejected(self):
        with pytest.raises(ValidationError):
            Catalog([self._itype("a")], [Region("r", {"a": 1.0})], default_region="q")

    def test_negative_price_rejected(self):
        with pytest.raises(ValidationError):
            Region("r", {"a": -1.0})

    def test_bad_cpu_speed_rejected(self):
        with pytest.raises(ValidationError):
            self._itype(speed=0.0)
