"""Tests for the cloud metadata store."""

import pytest

from repro.cloud.metadata import METRICS, MetadataStore, PerfRecord
from repro.common.errors import CloudError
from repro.distributions import Histogram, NormalDistribution


class TestFromCatalog:
    def test_full_population(self, catalog):
        store = MetadataStore.from_catalog(catalog)
        assert len(store) == len(catalog) * len(METRICS)
        for itype in catalog:
            for metric in METRICS:
                assert (metric, itype.name) in store

    def test_histogram_tracks_distribution(self, catalog):
        store = MetadataStore.from_catalog(catalog, bins=30)
        small = catalog.type("m1.small")
        h = store.histogram("seq_io", "m1.small")
        assert h.mean() == pytest.approx(small.seq_io.mean(), rel=0.01)

    def test_source_marked_catalog(self, catalog):
        store = MetadataStore.from_catalog(catalog)
        assert all(r.source == "catalog" for r in store.records())


class TestPutGet:
    def test_missing_record_raises(self, catalog):
        store = MetadataStore(catalog)
        with pytest.raises(CloudError):
            store.get("seq_io", "m1.small")

    def test_put_validates_instance_type(self, catalog):
        store = MetadataStore(catalog)
        record = PerfRecord(
            metric="seq_io",
            instance_type="nonexistent",
            histogram=Histogram.point(1.0),
            distribution=NormalDistribution(1.0, 0.1),
        )
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            store.put(record)

    def test_unknown_metric_rejected(self, catalog):
        with pytest.raises(CloudError):
            PerfRecord(
                metric="latency",
                instance_type="m1.small",
                histogram=Histogram.point(1.0),
                distribution=NormalDistribution(1.0, 0.1),
            )

    def test_calibration_overwrites_catalog(self, catalog):
        store = MetadataStore.from_catalog(catalog)
        record = PerfRecord(
            metric="seq_io",
            instance_type="m1.small",
            histogram=Histogram.point(42.0),
            distribution=NormalDistribution(42.0, 1.0),
            source="calibration",
        )
        store.put(record)
        assert store.get("seq_io", "m1.small").source == "calibration"
        assert store.histogram("seq_io", "m1.small").mean() == 42.0


class TestInstanceFacts:
    def test_paper_fact_shape(self, catalog):
        store = MetadataStore.from_catalog(catalog)
        facts = store.instance_facts()
        assert len(facts) == len(catalog)
        small = next(f for f in facts if f["instype"] == "m1.small")
        assert small["price"] == 0.044
        assert small["cpu"] == 1
        assert small["mem"] == 1.7

    def test_regional_facts(self, catalog):
        store = MetadataStore.from_catalog(catalog)
        facts = store.instance_facts(region="ap-southeast-1")
        small = next(f for f in facts if f["instype"] == "m1.small")
        assert small["price"] == 0.058
        assert small["region"] == "ap-southeast-1"

    def test_vid_is_dense_index(self, catalog):
        store = MetadataStore.from_catalog(catalog)
        vids = [f["vid"] for f in store.instance_facts()]
        assert vids == list(range(len(catalog)))
