"""Tests for the pairwise network model."""

import numpy as np
import pytest

from repro.cloud.network import NetworkModel
from repro.common.errors import ValidationError


@pytest.fixture()
def net(catalog):
    return NetworkModel(catalog)


class TestIntraRegionLinks:
    def test_slower_endpoint_dominates(self, net):
        dist = net.link_distribution("m1.medium", "m1.xlarge")
        assert dist.mean() == net.catalog.type("m1.medium").network.mean()

    def test_symmetric(self, net):
        a = net.link_distribution("m1.medium", "m1.large")
        b = net.link_distribution("m1.large", "m1.medium")
        assert a.mean() == b.mean()

    def test_fig7_ordering(self, net):
        """large<->large is faster and tighter than medium<->large."""
        ll = net.link_distribution("m1.large", "m1.large")
        ml = net.link_distribution("m1.medium", "m1.large")
        assert ll.mean() > ml.mean()
        assert ll.coefficient_of_variation() < ml.coefficient_of_variation()

    def test_sampled_link_below_both_endpoints(self, net, rng):
        samples = net.sample_link("m1.medium", "m1.large", rng, 500)
        assert np.all(samples > 0)
        # The sampled min is (stochastically) below each endpoint's mean.
        assert samples.mean() <= net.catalog.type("m1.medium").network.mean() * 1.02

    def test_scalar_sample(self, net, rng):
        assert isinstance(net.sample_link("m1.small", "m1.small", rng), float)

    def test_mean_bandwidth(self, net):
        assert net.mean_bandwidth("m1.small", "m1.xlarge") == pytest.approx(
            net.catalog.type("m1.small").network.mean()
        )


class TestCrossRegion:
    def test_wan_slower_than_lan(self, net):
        wan = net.cross_region_distribution("us-east-1", "ap-southeast-1")
        lan = net.link_distribution("m1.small", "m1.small")
        assert wan.mean() < lan.mean()

    def test_same_region_rejected(self, net):
        with pytest.raises(ValidationError):
            net.cross_region_distribution("us-east-1", "us-east-1")

    def test_unknown_region_rejected(self, net):
        with pytest.raises(ValidationError):
            net.cross_region_distribution("us-east-1", "nowhere")

    def test_sampled_wan_positive(self, net, rng):
        samples = net.sample_cross_region("us-east-1", "ap-southeast-1", rng, 1000)
        assert np.all(samples > 0)

    def test_custom_wan_distribution(self, catalog):
        from repro.distributions import Deterministic

        net = NetworkModel(catalog, wan=Deterministic(5e6))
        assert net.mean_cross_region_bandwidth("us-east-1", "ap-southeast-1") == 5e6
