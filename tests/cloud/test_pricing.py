"""Tests for the pricing model."""

import pytest

from repro.cloud.pricing import PricingModel
from repro.common.errors import ValidationError


@pytest.fixture()
def pricing(catalog):
    return PricingModel(catalog)


class TestTaskCosts:
    def test_expected_cost_is_fractional(self, pricing):
        # 30 minutes on m1.small at $0.044/h.
        assert pricing.expected_task_cost(1800.0, "m1.small") == pytest.approx(0.022)

    def test_billed_cost_rounds_up(self, pricing):
        assert pricing.billed_instance_cost(1800.0, "m1.small") == pytest.approx(0.044)
        assert pricing.billed_instance_cost(3601.0, "m1.small") == pytest.approx(0.088)

    def test_regional_pricing(self, pricing):
        us = pricing.expected_task_cost(3600.0, "m1.small", "us-east-1")
        sg = pricing.expected_task_cost(3600.0, "m1.small", "ap-southeast-1")
        assert sg > us


class TestTransfer:
    def test_intra_region_free(self, pricing):
        assert pricing.transfer_cost(1e12, "us-east-1", "us-east-1") == 0.0

    def test_cross_region_priced_per_gb(self, pricing, catalog):
        cost = pricing.transfer_cost(10e9, "us-east-1", "ap-southeast-1")
        assert cost == pytest.approx(10 * catalog.region("us-east-1").transfer_out_per_gb)

    def test_uses_source_egress_price(self, pricing):
        a = pricing.transfer_cost(1e9, "us-east-1", "ap-southeast-1")
        b = pricing.transfer_cost(1e9, "ap-southeast-1", "us-east-1")
        # Same default egress price both ways in the EC2 catalog.
        assert a == pytest.approx(b)

    def test_negative_bytes_rejected(self, pricing):
        with pytest.raises(ValidationError):
            pricing.transfer_cost(-1.0, "us-east-1", "ap-southeast-1")

    def test_unknown_region_rejected(self, pricing):
        with pytest.raises(ValidationError):
            pricing.transfer_cost(1.0, "us-east-1", "mars-1")


class TestRegionComparison:
    def test_price_ratio(self, pricing):
        ratio = pricing.price_ratio("m1.small", "ap-southeast-1", "us-east-1")
        assert ratio == pytest.approx(0.058 / 0.044)

    def test_cheapest_region(self, pricing):
        assert pricing.cheapest_region("m1.small") == "us-east-1"
