"""Tests for the calibration micro-benchmarks (Table 2, Figs. 6-7)."""

import pytest

from repro.cloud.calibration import Calibrator
from repro.cloud.metadata import METRICS
from repro.common.errors import CloudError
from repro.common.rng import RngService


@pytest.fixture(scope="module")
def calibrator(catalog):
    return Calibrator(catalog, RngService(42), num_samples=3000)


class TestMeasure:
    def test_seq_io_recovers_gamma(self, calibrator, catalog):
        result = calibrator.measure("seq_io", "m1.small")
        assert result.fit.family == "gamma"
        truth = catalog.type("m1.small").seq_io
        assert result.samples.mean() == pytest.approx(truth.mean(), rel=0.03)

    def test_rand_io_recovers_normal(self, calibrator, catalog):
        result = calibrator.measure("rand_io", "m1.medium")
        assert result.fit.family == "normal"
        assert result.fit.distribution.mu == pytest.approx(128.9, rel=0.03)

    def test_network_fits_normal(self, calibrator):
        """Fig. 6b: network performance is well modeled by a Normal."""
        result = calibrator.measure("network", "m1.medium")
        assert result.fit.family == "normal"
        assert result.fit.accepted()

    def test_network_variation_substantial(self, calibrator):
        """Fig. 6a: m1.medium network performance varies a lot."""
        result = calibrator.measure("network", "m1.medium")
        assert result.max_relative_variation > 0.5

    def test_samples_positive(self, calibrator):
        result = calibrator.measure("network", "m1.small")
        assert result.samples.samples.min() > 0

    def test_unknown_metric_rejected(self, calibrator):
        with pytest.raises(CloudError):
            calibrator.measure("gpu_flops", "m1.small")

    def test_measurement_reproducible(self, catalog):
        a = Calibrator(catalog, RngService(5), num_samples=500).measure("seq_io", "m1.large")
        b = Calibrator(catalog, RngService(5), num_samples=500).measure("seq_io", "m1.large")
        assert a.samples.mean() == b.samples.mean()


class TestMeasureLink:
    def test_fig7_ordering(self, calibrator):
        ll = calibrator.measure_link("m1.large", "m1.large")
        ml = calibrator.measure_link("m1.medium", "m1.large")
        assert ll.samples.mean() > ml.samples.mean()
        assert ll.samples.std() < ml.samples.std()


class TestRunAndTable2:
    def test_run_populates_store(self, calibrator, catalog):
        store = calibrator.run()
        assert len(store) == len(catalog) * len(METRICS)
        assert all(r.source == "calibration" for r in store.records())

    def test_table2_recovers_ground_truth(self, catalog):
        cal = Calibrator(catalog, RngService(42), num_samples=6000)
        rows = cal.table2()
        truth = {
            "m1.small": (129.3, 150.3, 50.0),
            "m1.medium": (127.1, 128.9, 8.4),
            "m1.large": (376.6, 172.9, 34.8),
            "m1.xlarge": (408.1, 1034.0, 146.4),
        }
        for row in rows:
            k, mu, sigma = truth[row["instance_type"]]
            assert row["seq_io_k"] == pytest.approx(k, rel=0.15)
            assert row["rand_io_mu"] == pytest.approx(mu, rel=0.03)
            assert row["rand_io_sigma"] == pytest.approx(sigma, rel=0.15)
            assert row["seq_io_family"] == "gamma"
            assert row["rand_io_family"] == "normal"

    def test_minimum_samples_enforced(self, catalog):
        with pytest.raises(CloudError):
            Calibrator(catalog, num_samples=10)
