"""Tests for the spot-market pricing extension."""

import numpy as np
import pytest

from repro.cloud.spot import SpotOutcome, SpotPriceProcess, simulate_spot_run
from repro.common.errors import CloudError


@pytest.fixture()
def process(catalog):
    return SpotPriceProcess.for_type(catalog, "m1.large")


class TestPriceProcess:
    def test_prices_within_bounds(self, process, rng):
        prices = process.simulate(500, rng)
        assert np.all(prices >= process.floor_fraction * process.on_demand - 1e-12)
        assert np.all(prices <= process.cap_fraction * process.on_demand + 1e-12)

    def test_mean_reversion(self, process, rng):
        prices = process.simulate(5000, rng)
        assert prices.mean() == pytest.approx(process.mean_price, rel=0.15)

    def test_spot_cheaper_than_on_demand_on_average(self, process, rng):
        prices = process.simulate(2000, rng)
        assert prices.mean() < process.on_demand

    def test_autocorrelation_positive(self, process, rng):
        prices = process.simulate(2000, rng)
        a, b = prices[:-1] - prices.mean(), prices[1:] - prices.mean()
        corr = float((a * b).mean() / (a.std() * b.std()))
        assert corr > 0.3  # phi = 0.7

    def test_validation(self, catalog):
        with pytest.raises(CloudError):
            SpotPriceProcess(on_demand=0.0)
        with pytest.raises(CloudError):
            SpotPriceProcess(on_demand=1.0, phi=1.0)
        with pytest.raises(CloudError):
            SpotPriceProcess(on_demand=1.0, floor_fraction=0.5, mean_fraction=0.3)
        with pytest.raises(CloudError):
            SpotPriceProcess(on_demand=1.0).simulate(0, np.random.default_rng(0))

    def test_for_type_validates(self, catalog):
        with pytest.raises(Exception):
            SpotPriceProcess.for_type(catalog, "z9.nano")


class TestSpotRun:
    def test_high_bid_always_completes(self, process, rng):
        out = simulate_spot_run(process, 3.0, bid=process.on_demand * 2.1, rng=rng, trials=50)
        assert out.completion_probability == 1.0
        assert out.mean_revocations == 0.0

    def test_high_bid_still_cheaper_than_on_demand(self, process, rng):
        """The spot headline: pay the market price, not the bid."""
        out = simulate_spot_run(process, 3.0, bid=process.on_demand * 2.1, rng=rng, trials=100)
        assert out.saving_vs_on_demand > 0.3

    def test_low_bid_risks_completion(self, process, rng):
        """Bidding below the mean price must hurt completion odds."""
        low = simulate_spot_run(
            process, 6.0, bid=process.mean_price * 0.8, rng=rng, trials=100, horizon_hours=48
        )
        high = simulate_spot_run(
            process, 6.0, bid=process.on_demand, rng=rng, trials=100, horizon_hours=48
        )
        assert low.completion_probability < high.completion_probability

    def test_revocations_lengthen_makespan(self, process, rng):
        tight = simulate_spot_run(
            process, 4.0, bid=process.mean_price * 1.05, rng=rng, trials=150
        )
        assert tight.mean_makespan_hours >= 4.0
        assert tight.mean_revocations >= 0.0

    def test_invalid_args(self, process, rng):
        with pytest.raises(CloudError):
            simulate_spot_run(process, 0.0, bid=1.0, rng=rng)
        with pytest.raises(CloudError):
            simulate_spot_run(process, 1.0, bid=0.0, rng=rng)
        with pytest.raises(CloudError):
            simulate_spot_run(process, 1.0, bid=1.0, rng=rng, trials=0)

    def test_fractional_duration_rounds_up(self, process, rng):
        out = simulate_spot_run(process, 2.5, bid=process.on_demand * 2.1, rng=rng, trials=20)
        assert out.on_demand_cost == pytest.approx(3 * process.on_demand)

    def test_outcome_saving_degenerate(self):
        out = SpotOutcome(
            bid=1.0, completion_probability=0.0, mean_cost=float("nan"),
            mean_makespan_hours=float("nan"), mean_revocations=float("nan"),
            on_demand_cost=0.0,
        )
        assert out.saving_vs_on_demand == 0.0
